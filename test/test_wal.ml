(* Tests for the write-ahead log. *)

module Wal = Sias_wal.Wal
module Device = Flashsim.Device
module Faultdev = Flashsim.Faultdev
module Blocktrace = Flashsim.Blocktrace
module Simclock = Sias_util.Simclock
module Bus = Sias_obs.Bus

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_lsn_monotone () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let l1 = Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.of_string "a") in
  let l2 = Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Update ~payload:(Bytes.of_string "b") in
  check "monotone" true (l2 > l1);
  checki "current" l2 (Wal.current_lsn w)

let test_flush_semantics () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let _ = Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.of_string "abc") in
  checki "nothing flushed yet" 0 (Wal.flushed_lsn w);
  Wal.flush w ~sync:true;
  checki "flushed to current" (Wal.current_lsn w) (Wal.flushed_lsn w);
  check "bytes written" true (Wal.bytes_written w > 0);
  checki "one flush" 1 (Wal.flush_count w);
  (* empty flush is a no-op *)
  Wal.flush w ~sync:true;
  checki "still one flush" 1 (Wal.flush_count w)

let test_device_sequential_appends () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let w = Wal.create ~device ~clock () in
  for i = 1 to 5 do
    let _ = Wal.append w ~xid:i ~rel:0 ~kind:Wal.Commit ~payload:Bytes.empty in
    Wal.flush w ~sync:true
  done;
  let recs = Blocktrace.records (Device.trace device) in
  checki "five writes" 5 (List.length recs);
  (* strictly increasing sector addresses: a pure append stream *)
  let sectors = List.map (fun r -> r.Blocktrace.sector) recs in
  check "monotone sectors" true (List.sort compare sectors = sectors);
  check "sync flush advances clock" true (Simclock.now clock > 0.0)

let test_records_retained_in_order () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let _ = Wal.append w ~xid:1 ~rel:2 ~kind:Wal.Insert ~payload:(Bytes.of_string "x") in
  let _ = Wal.append w ~xid:1 ~rel:2 ~kind:Wal.Commit ~payload:Bytes.empty in
  let _ = Wal.append w ~xid:2 ~rel:3 ~kind:Wal.Abort ~payload:Bytes.empty in
  let recs = Wal.records_from w ~lsn:0 in
  checki "three records" 3 (List.length recs);
  let kinds = List.map (fun r -> r.Wal.kind) recs in
  check "in order" true (kinds = [ Wal.Insert; Wal.Commit; Wal.Abort ]);
  let from2 = Wal.records_from w ~lsn:2 in
  checki "suffix" 2 (List.length from2)

let test_truncate () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  for i = 1 to 10 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty)
  done;
  Wal.truncate_before w ~lsn:6;
  let recs = Wal.records_from w ~lsn:0 in
  checki "only tail kept" 5 (List.length recs);
  check "all lsn >= 6" true (List.for_all (fun r -> r.Wal.lsn >= 6) recs);
  checki "oldest retained" 6 (Wal.oldest_retained w)

let test_empty_and_past_tail () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  checki "empty log" 0 (List.length (Wal.records_from w ~lsn:0));
  let recs, tail = Wal.verified_from w ~lsn:0 in
  check "empty verified scan clean" true (recs = [] && tail = `Clean);
  checki "oldest retained of fresh log" 1 (Wal.oldest_retained w);
  for i = 1 to 3 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty)
  done;
  checki "lsn past tail" 0 (List.length (Wal.records_from w ~lsn:99));
  let recs, tail = Wal.verified_from w ~lsn:99 in
  check "verified scan past tail clean" true (recs = [] && tail = `Clean)

let test_truncate_then_replay () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  for i = 1 to 10 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty)
  done;
  Wal.truncate_before w ~lsn:6;
  (* a replay from before the truncation point sees only what survives *)
  let recs, tail = Wal.verified_from w ~lsn:0 in
  check "replay after truncate clean" true (tail = `Clean);
  check "replay starts at truncation point" true
    (List.map (fun r -> r.Wal.lsn) recs = [ 6; 7; 8; 9; 10 ]);
  (* truncating everything leaves an empty but consistent log *)
  Wal.truncate_before w ~lsn:100;
  checki "all gone" 0 (List.length (Wal.records_from w ~lsn:0));
  checki "oldest retained tracks" 100 (Wal.oldest_retained w);
  let lsn = Wal.append w ~xid:11 ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty in
  checki "lsns never reused" 11 lsn

let test_record_crc () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let _ = Wal.append w ~xid:1 ~rel:2 ~kind:Wal.Insert ~payload:(Bytes.of_string "abc") in
  let r = List.hd (Wal.records_from w ~lsn:0) in
  check "fresh record verifies" true (Wal.verify r);
  check "tampered payload fails" false
    (Wal.verify { r with Wal.payload = Bytes.of_string "abd" });
  check "tampered xid fails" false (Wal.verify { r with Wal.xid = 2 });
  check "tampered kind fails" false (Wal.verify { r with Wal.kind = Wal.Delete })

let test_torn_tail_scan () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  for i = 1 to 8 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.make 8 'p'))
  done;
  (* a torn tail: the last two records are damaged *)
  Wal.corrupt w ~lsn:7;
  Wal.corrupt w ~lsn:8;
  let recs, tail = Wal.verified_from w ~lsn:0 in
  check "tail reported torn at first bad record" true (tail = `Torn 7);
  check "intact prefix returned" true
    (List.map (fun r -> r.Wal.lsn) recs = [ 1; 2; 3; 4; 5; 6 ])

let test_midlog_corruption_is_loud () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  for i = 1 to 8 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.make 8 'p'))
  done;
  (* damage in the body of the log — valid records follow, so this is not
     a torn tail and replay must refuse rather than skip it *)
  Wal.corrupt w ~lsn:4;
  check "raises Corrupt_wal" true
    (match Wal.verified_from w ~lsn:0 with
    | _ -> false
    | exception Wal.Corrupt_wal lsn -> lsn = 4)

let test_crash_drops_unflushed () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  for i = 1 to 5 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty)
  done;
  Wal.flush w ~sync:true;
  for i = 6 to 9 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty)
  done;
  Wal.crash w;
  let recs, tail = Wal.verified_from w ~lsn:0 in
  check "only flushed records survive" true
    (List.map (fun r -> r.Wal.lsn) recs = [ 1; 2; 3; 4; 5 ]);
  check "surviving log is clean" true (tail = `Clean);
  let lsn = Wal.append w ~xid:10 ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty in
  checki "next_lsn preserved across crash" 10 lsn

(* A fault plan that tears every multi-sector write — crash behaviour
   becomes deterministic modulo the persisted-prefix draw. *)
let always_torn ~seed =
  Faultdev.create
    ~profile:{ Faultdev.none with Faultdev.torn_write_p = 1.0 }
    ~seed ()

let test_torn_probe_uses_batch_sector () =
  (* Regression: the torn-write probe must see the sector the batch was
     written at, not the already-advanced next-append sector. With the
     bug, the Fault_hit sector never matches the trace record's. *)
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let faults = always_torn ~seed:42 in
  let bus = Bus.create () in
  let hit_sectors = ref [] in
  Bus.subscribe bus (fun e ->
      match e with
      | Bus.Fault_hit { kind = "torn_wal"; sector } ->
          hit_sectors := sector :: !hit_sectors
      | _ -> ());
  let w = Wal.create ~device ~faults ~bus ~clock () in
  (* two async flushes of two ~1 KiB records each: both multi-sector, so
     the always-torn plan fires on each *)
  for round = 0 to 1 do
    for i = 1 to 2 do
      ignore
        (Wal.append w ~xid:((round * 2) + i) ~rel:0 ~kind:Wal.Insert
           ~payload:(Bytes.make 1000 'p'))
    done;
    Wal.flush w ~sync:false
  done;
  let trace_sectors =
    List.map (fun r -> r.Blocktrace.sector) (Blocktrace.records (Device.trace device))
  in
  checki "both flushes probed" 2 (List.length !hit_sectors);
  check "probe sectors equal trace sectors" true
    (List.rev !hit_sectors = trace_sectors);
  (* the first batch starts at the head of the log device *)
  checki "first probe at sector 0" 0 (List.nth (List.rev !hit_sectors) 0)

let test_tear_point_equivalence () =
  (* The incremental batch-slice scan must agree with a whole-log
     reference scan for every prefix length. *)
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let sizes = [ 0; 1; 7; 64; 100; 3; 511; 512; 513 ] in
  List.iteri
    (fun i n ->
      ignore
        (Wal.append w ~xid:(i + 1) ~rel:0 ~kind:Wal.Insert
           ~payload:(Bytes.make n 'x')))
    sizes;
  let slice = Wal.pending_records w in
  let total = List.fold_left (fun a r -> a + Wal.record_bytes r) 0 slice in
  (* reference: walk the full retained log with explicit byte offsets *)
  let reference persisted =
    let rec go off = function
      | [] -> None
      | r :: rest ->
          if off + Wal.record_bytes r <= persisted then
            go (off + Wal.record_bytes r) rest
          else Some r.Wal.lsn
    in
    go 0 (Wal.records_from w ~lsn:0)
  in
  for persisted = 0 to total + 16 do
    let got = Wal.tear_point ~slice ~persisted
    and want = reference persisted in
    if got <> want then
      Alcotest.failf "tear_point mismatch at persisted=%d" persisted
  done;
  check "full prefix means no tear" true
    (Wal.tear_point ~slice ~persisted:total = None);
  check "empty prefix tears at first record" true
    (Wal.tear_point ~slice ~persisted:0 = Some 1)

let test_earliest_tear_wins () =
  (* Two torn async flushes, then a crash: replay must stop at the tear
     of the FIRST flush — bytes of the second flush that landed whole
     sit beyond a hole and are unreachable. *)
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let faults = always_torn ~seed:7 in
  let w = Wal.create ~device ~faults ~clock () in
  for i = 1 to 3 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.make 1000 'a'))
  done;
  Wal.flush w ~sync:false;
  for i = 4 to 6 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.make 1000 'b'))
  done;
  Wal.flush w ~sync:false;
  Wal.crash w;
  let recs, tail = Wal.verified_from w ~lsn:0 in
  (match tail with
  | `Torn cut ->
      check "tear inside the first flush" true (cut >= 1 && cut <= 3);
      check "only the clean prefix replays" true
        (List.map (fun r -> r.Wal.lsn) recs
        = List.init (cut - 1) (fun i -> i + 1))
  | `Clean -> Alcotest.fail "crash after torn async flushes must report a tear")

let test_sync_flush_clears_tear () =
  (* An fsync makes everything previously written durable: a pending tear
     from an earlier async flush must not survive it. *)
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let faults = always_torn ~seed:11 in
  let w = Wal.create ~device ~faults ~clock () in
  for i = 1 to 3 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.make 1000 'a'))
  done;
  Wal.flush w ~sync:false;
  ignore (Wal.append w ~xid:4 ~rel:0 ~kind:Wal.Commit ~payload:Bytes.empty);
  Wal.flush w ~sync:true;
  Wal.crash w;
  let recs, tail = Wal.verified_from w ~lsn:0 in
  check "log clean after fsync" true (tail = `Clean);
  check "everything survives" true
    (List.map (fun r -> r.Wal.lsn) recs = [ 1; 2; 3; 4 ])

let suite =
  [
    Alcotest.test_case "lsn monotone" `Quick test_lsn_monotone;
    Alcotest.test_case "flush semantics" `Quick test_flush_semantics;
    Alcotest.test_case "sequential device appends" `Quick test_device_sequential_appends;
    Alcotest.test_case "records retained in order" `Quick test_records_retained_in_order;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "empty log and lsn past tail" `Quick test_empty_and_past_tail;
    Alcotest.test_case "truncate then replay" `Quick test_truncate_then_replay;
    Alcotest.test_case "per-record crc" `Quick test_record_crc;
    Alcotest.test_case "torn tail scan" `Quick test_torn_tail_scan;
    Alcotest.test_case "mid-log corruption is loud" `Quick test_midlog_corruption_is_loud;
    Alcotest.test_case "crash drops unflushed" `Quick test_crash_drops_unflushed;
    Alcotest.test_case "torn probe uses batch sector" `Quick
      test_torn_probe_uses_batch_sector;
    Alcotest.test_case "tear point equals whole-log reference" `Quick
      test_tear_point_equivalence;
    Alcotest.test_case "earliest tear wins across flushes" `Quick
      test_earliest_tear_wins;
    Alcotest.test_case "sync flush clears pending tear" `Quick
      test_sync_flush_clears_tear;
  ]
