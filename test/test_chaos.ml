(* Crash-schedule exploration and out-of-space degradation.

   The explorer enumerates deterministic crash schedules — every named
   crash point reached by a seeded workload, then every point reached
   during the resulting recovery (nested crashes, recovery re-run to
   fixpoint) — and requires each schedule to end byte-equal to the model
   prefix at the commit horizon, with a clean SI-checker verdict and
   idempotent recovery. The out-of-space scenarios drive a finite WAL to
   exhaustion and require either successful emergency reclamation or a
   loud, typed, read-only degradation — never corruption or a crash.

   Bounded by default ([max_schedules]); CHAOS_FULL=1 removes the budget
   for the full enumeration (the [make chaos] CI target). *)

module Db = Mvcc.Db
module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe
module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace
module Crashpoint = Sias_chaos.Crashpoint
module Explorer = Sias_chaos.Explorer
module Chaosrun = Harness.Chaosrun

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let full_enumeration = Sys.getenv_opt "CHAOS_FULL" = Some "1"

let budget n = if full_enumeration then None else Some n

let explorer_cfg ?(depth2 = true) n =
  { Explorer.hits_per_point = 2; depth2; max_schedules = budget n }

let report_failures r =
  String.concat "; "
    (List.map
       (fun f ->
         Printf.sprintf "%s: %s"
           (Explorer.schedule_to_string f.Explorer.schedule)
           f.Explorer.error)
       r.Explorer.failures)

let assert_clean name r =
  if r.Explorer.failures <> [] then
    Alcotest.failf "%s: %d failing schedules: %s" name
      (List.length r.Explorer.failures)
      (report_failures r);
  check (name ^ ": ran schedules") true (r.Explorer.schedules_run > 0)

(* ---- schedule exploration: engines x commit modes ---- *)

let test_explore engine mode () =
  let c = Chaosrun.config ~commit_mode:mode engine in
  let name =
    Printf.sprintf "%s/%s" engine (Commitpipe.mode_name mode)
  in
  assert_clean name (Chaosrun.explore ~cfg:(explorer_cfg 60) c)

let test_explore_standby engine () =
  let c = Chaosrun.config ~standby:true engine in
  (* depth 1 only: failover "recovery" is promotion, whose nested-crash
     schedules are covered by the promote/install points themselves *)
  assert_clean (engine ^ "/standby")
    (Chaosrun.explore ~cfg:(explorer_cfg ~depth2:false 40) c)

(* the census must see a healthy spread of instrumented subsystems *)
let test_census_coverage () =
  let c =
    Chaosrun.config ~commit_mode:(Commitpipe.Group { delay = 0.005 }) "sias-v"
  in
  let r =
    Chaosrun.explore ~cfg:{ (explorer_cfg 1) with depth2 = false } c
  in
  let names = List.map fst r.Explorer.points in
  let rec_names = List.map fst r.Explorer.recovery_points in
  List.iter
    (fun p ->
      check (Printf.sprintf "workload census reaches %s" p) true
        (List.mem p names))
    [
      "wal.append.pre";
      "wal.flush.pre";
      "wal.fsync.pre";
      "db.commit.wal.pre";
      "db.clog.mark.pre";
      "db.clog.mark.post";
      "db.abort.pre";
      "commitpipe.commit.pre";
      "commitpipe.group.close.pre";
      "walcodec.fpw.pre";
    ];
  List.iter
    (fun p ->
      check (Printf.sprintf "recovery census reaches %s" p) true
        (List.mem p rec_names))
    [
      "recover.clog.pre";
      "recover.clog.post";
      "recover.redo.pre";
      "recover.redo.record";
      "recover.heap.restore";
    ]

(* ---- satellite: recovery idempotency under k nested crashes ---- *)

let test_nested_recovery engine mode () =
  let c = Chaosrun.config ~commit_mode:mode engine in
  (* census one recovery to find a point that is reached many times *)
  let s = Chaosrun.session c in
  s.Explorer.run ();
  s.Explorer.crash ();
  Crashpoint.census ();
  s.Explorer.recover ();
  let pts = Crashpoint.censused () in
  Crashpoint.disarm ();
  s.Explorer.verify ();
  let point =
    match List.find_opt (fun (p, _) -> p = "recover.redo.record") pts with
    | Some (p, _) -> p
    | None -> fst (List.hd pts)
  in
  (* crash recovery k = 1..3 times mid-flight, then let it finish: the
     final state must still verify exactly like the single-pass run *)
  List.iter
    (fun k ->
      let s = Chaosrun.session c in
      s.Explorer.run ();
      s.Explorer.crash ();
      for hit = 1 to k do
        try
          Crashpoint.arm ~point ~hit ();
          s.Explorer.recover ();
          (* the point may be out of reach on a re-run; that is fine *)
          Crashpoint.disarm ()
        with Crashpoint.Crash _ -> s.Explorer.crash ()
      done;
      s.Explorer.recover ();
      s.Explorer.verify ())
    [ 1; 2; 3 ]

(* ---- out of space: typed errors at the WAL and device layers ---- *)

let test_wal_capacity_typed () =
  let clock = Sias_util.Simclock.create () in
  let w = Wal.create ~capacity_bytes:256 ~clock () in
  let payload = Bytes.create 64 in
  let raised = ref (-1) in
  (try
     for _ = 1 to 16 do
       ignore (Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Insert ~payload)
     done
   with Wal.Out_of_space { capacity; _ } -> raised := capacity);
  checki "typed Out_of_space with capacity echoed" 256 !raised;
  (* checkpoint records use the reserved emergency region: they must be
     appendable even when the log is at capacity *)
  ignore (Wal.append w ~xid:0 ~rel:(-1) ~kind:Wal.Checkpoint ~payload);
  check "retained over nominal capacity after checkpoint" true
    (Wal.retained_bytes w > 256)

let test_device_capacity_typed () =
  let dev = Device.ssd_x25e ~name:"tiny" () in
  Device.set_capacity dev ~sectors:64;
  ignore (Device.submit dev ~now:0.0 Blocktrace.Write ~sector:0 ~bytes:512);
  (match
     Device.submit dev ~now:0.0 Blocktrace.Write ~sector:63 ~bytes:1024
   with
  | _ -> Alcotest.fail "expected Device.No_space"
  | exception Device.No_space { sector; capacity_sectors; _ } ->
      checki "sector echoed" 63 sector;
      checki "capacity echoed" 64 capacity_sectors);
  (* reads are not capacity-gated *)
  ignore (Device.submit dev ~now:0.0 Blocktrace.Read ~sector:63 ~bytes:1024)

(* ---- out of space: reclamation keeps the workload live ---- *)

let test_oos_reclamation engine () =
  let o =
    Chaosrun.oos_run ~engine ~wal_capacity_bytes:20_000 ~ops:400 ()
  in
  check "reclamations happened" true (o.Chaosrun.reclaims > 0);
  check "workload survived (no degradation)" true (o.Chaosrun.degraded = None);
  check "no writers refused" true (o.Chaosrun.read_only_errors = 0);
  check "most transactions committed" true
    (o.Chaosrun.committed > o.Chaosrun.attempted / 2);
  check "restart serves the committed model" true o.Chaosrun.consistent

(* ---- out of space: futile reclamation degrades loudly ---- *)

let test_oos_degraded engine () =
  let o =
    Chaosrun.oos_run ~hold:true ~engine ~wal_capacity_bytes:12_000 ~ops:400 ()
  in
  (* a hold pins the whole log: reclamation cannot free anything, so the
     database must refuse writers loudly — through the admission gate
     (backpressure shed) or the typed Read_only error — and stay sound *)
  check "writers were refused" true
    (o.Chaosrun.read_only_errors > 0 || o.Chaosrun.shed > 0);
  check "refusal was loud: degraded mode or backpressure" true
    (o.Chaosrun.degraded <> None || o.Chaosrun.backpressure_on > 0);
  check "some transactions committed before exhaustion" true
    (o.Chaosrun.committed > 0);
  check "restart serves the committed model" true o.Chaosrun.consistent

(* ---- out of space: capacity below a single full-page image ---- *)

let test_oos_hard_degraded () =
  (* 6000 bytes cannot hold even one 8 KiB full-page image: the very
     first writer is refused with the typed error, the database enters
     read-only degraded mode, and a restart still serves a sound (empty)
     state — no crash, no corruption *)
  let o =
    Chaosrun.oos_run ~hold:true ~engine:"si" ~wal_capacity_bytes:6_000
      ~ops:400 ()
  in
  check "typed Read_only raised" true (o.Chaosrun.read_only_errors > 0);
  check "degraded mode entered" true (o.Chaosrun.degraded <> None);
  checki "nothing committed" 0 o.Chaosrun.committed;
  check "restart serves the committed model" true o.Chaosrun.consistent

let suite =
  let modes =
    [
      ("sync", Commitpipe.Sync);
      ("group", Commitpipe.Group { delay = 0.005 });
      ("async", Commitpipe.Async { interval = 0.01; max_bytes = 1 lsl 14 });
    ]
  in
  let engines = [ "si"; "si-cv"; "sias"; "sias-v" ] in
  List.concat
    [
      [
        Alcotest.test_case "census covers the instrumented subsystems" `Quick
          test_census_coverage;
        Alcotest.test_case "wal: typed Out_of_space, checkpoint exemption"
          `Quick test_wal_capacity_typed;
        Alcotest.test_case "device: typed No_space on the write path" `Quick
          test_device_capacity_typed;
      ];
      (* schedules: every engine under sync; modes crossed on sias-v *)
      List.map
        (fun e ->
          Alcotest.test_case
            (Printf.sprintf "schedules: %s/sync" e)
            `Slow
            (test_explore e Commitpipe.Sync))
        engines;
      List.filter_map
        (fun (mn, m) ->
          if mn = "sync" then None
          else
            Some
              (Alcotest.test_case
                 (Printf.sprintf "schedules: sias-v/%s" mn)
                 `Slow (test_explore "sias-v" m)))
        modes;
      [
        Alcotest.test_case "schedules: si/standby failover" `Slow
          (test_explore_standby "si");
        Alcotest.test_case "schedules: sias-v/standby failover" `Slow
          (test_explore_standby "sias-v");
      ];
      (* satellite: nested-crash recovery idempotency, 4 engines x modes *)
      List.concat_map
        (fun e ->
          List.filter_map
            (fun (mn, m) ->
              if mn = "sync" then None
              else
                Some
                  (Alcotest.test_case
                     (Printf.sprintf "nested recovery: %s/%s" e mn)
                     `Slow (test_nested_recovery e m)))
            modes)
        engines;
      List.map
        (fun e ->
          Alcotest.test_case
            (Printf.sprintf "oos: %s reclamation keeps workload live" e)
            `Quick (test_oos_reclamation e))
        [ "si"; "sias-v" ];
      List.map
        (fun e ->
          Alcotest.test_case
            (Printf.sprintf "oos: %s futile reclamation degrades loudly" e)
            `Quick (test_oos_degraded e))
        [ "si"; "sias-v" ];
      [
        Alcotest.test_case "oos: capacity below one page image is refused"
          `Quick test_oos_hard_degraded;
      ];
    ]
