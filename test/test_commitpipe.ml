(* The commit pipeline: group commit shares one fsync across a window,
   async commit acks at append and bounds its loss window, and the
   default mode stays byte-identical to the historical per-commit
   fsync. *)

module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe
module Device = Flashsim.Device
module Faultdev = Flashsim.Faultdev
module Simclock = Sias_util.Simclock
module Bus = Sias_obs.Bus

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-12))

(* Append a commit record for [xid] and route it through the pipeline. *)
let commit_txn w p ~xid =
  let lsn = Wal.append w ~xid ~rel:0 ~kind:Wal.Commit ~payload:Bytes.empty in
  Commitpipe.commit p ~xid ~lsn

let test_group_shares_one_fsync () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let bus = Bus.create () in
  let group_sizes = ref [] in
  Bus.subscribe bus (fun e ->
      match e with
      | Bus.Commit_group { size } -> group_sizes := size :: !group_sizes
      | _ -> ());
  let p =
    Commitpipe.create ~wal:w ~clock ~bus (Commitpipe.Group { delay = 0.002 })
  in
  let a1 = commit_txn w p ~xid:1 in
  let a2 = commit_txn w p ~xid:2 in
  let s1, s2 =
    match (a1, a2) with
    | Commitpipe.Queued s1, Commitpipe.Queued s2 -> (s1, s2)
    | _ -> Alcotest.fail "group commit must queue, not ack inline"
  in
  check "tickets are distinct" true (s1 <> s2);
  check "nothing resolved before the deadline" true
    (Commitpipe.drain_resolved p = []);
  check "window not closed before its deadline" false
    (Commitpipe.close_due p ~upto:0.001);
  checki "wal untouched while the window is open" 0 (Wal.flushed_lsn w);
  check "window closes at its deadline" true
    (Commitpipe.close_due p ~upto:0.002);
  (match Commitpipe.drain_resolved p with
  | [ (r1, c1); (r2, c2) ] ->
      checki "first ticket resolves first" s1 r1;
      checki "second ticket resolves second" s2 r2;
      checkf "members share one completion" c1 c2;
      checkf "completion is the window deadline" 0.002 c1
  | l -> Alcotest.failf "expected 2 resolutions, got %d" (List.length l));
  checki "both commit records flushed" (Wal.current_lsn w) (Wal.flushed_lsn w);
  let st = Commitpipe.stats p in
  checki "one fsync for the whole group" 1 st.Commitpipe.commit_fsyncs;
  checki "one group" 1 st.Commitpipe.groups;
  checki "two grouped commits" 2 st.Commitpipe.grouped_commits;
  checki "one fsync saved" 1 st.Commitpipe.fsyncs_saved;
  checki "max group size" 2 st.Commitpipe.max_group;
  check "group size published on the bus" true (!group_sizes = [ 2 ])

let test_group_overdue_closed_by_next_commit () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let p =
    Commitpipe.create ~wal:w ~clock (Commitpipe.Group { delay = 0.002 })
  in
  Simclock.advance clock 0.01;
  let a3 = commit_txn w p ~xid:3 in
  check "opens a fresh window" true
    (match a3 with Commitpipe.Queued _ -> true | _ -> false);
  (* the window (deadline 0.012) goes overdue while this terminal works;
     the next commit must close it before registering itself *)
  Simclock.advance clock 0.02;
  ignore (commit_txn w p ~xid:4);
  (match Commitpipe.drain_resolved p with
  | [ (_, c) ] -> checkf "overdue group closed at its own deadline" 0.012 c
  | l -> Alcotest.failf "expected 1 resolution, got %d" (List.length l));
  (* quiesce: finalize force-closes the still-open window *)
  Commitpipe.finalize p;
  checki "finalize flushes everything" (Wal.current_lsn w) (Wal.flushed_lsn w);
  checki "two groups total" 2 (Commitpipe.stats p).Commitpipe.groups

let test_group_fsync_does_not_stall_clock () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let w = Wal.create ~device ~clock () in
  let p =
    Commitpipe.create ~wal:w ~clock (Commitpipe.Group { delay = 0.002 })
  in
  ignore (commit_txn w p ~xid:1);
  ignore (commit_txn w p ~xid:2);
  check "closed" true (Commitpipe.close_due p ~upto:infinity);
  (match Commitpipe.drain_resolved p with
  | [ (_, c1); (_, c2) ] ->
      checkf "shared completion" c1 c2;
      check "completion includes device latency past the deadline" true
        (c1 > 0.002)
  | _ -> Alcotest.fail "expected 2 resolutions");
  (* the group fsync charges its members, not the world *)
  checkf "global clock untouched by the group fsync" 0.0 (Simclock.now clock)

let test_group_delay_zero_is_sync () =
  (* commit_delay = 0 must degenerate to the per-commit fsync path with
     identical timing and identical device traffic *)
  let run mode =
    let clock = Simclock.create () in
    let device = Device.ssd_x25e ~blocks:256 () in
    let w = Wal.create ~device ~clock () in
    let p = Commitpipe.create ~wal:w ~clock mode in
    let acks =
      List.map
        (fun xid ->
          ignore
            (Wal.append w ~xid ~rel:0 ~kind:Wal.Insert
               ~payload:(Bytes.make 100 'x'));
          match commit_txn w p ~xid with
          | Commitpipe.Durable at -> at
          | Commitpipe.Queued _ -> Alcotest.fail "delay=0 must ack inline")
        [ 1; 2; 3; 4; 5 ]
    in
    ( acks,
      Simclock.now clock,
      Wal.bytes_written w,
      Wal.flush_count w,
      (Commitpipe.stats p).Commitpipe.commit_fsyncs )
  in
  let sync = run Commitpipe.Sync in
  let zero = run (Commitpipe.Group { delay = 0.0 }) in
  check "group delay=0 identical to sync" true (sync = zero)

let test_db_group_delay_zero_determinism () =
  (* end to end through an engine: the default pipeline and a zero-width
     group window must produce the same clock, the same WAL traffic and
     the same fsync count *)
  let run mode =
    let wal_device = Device.ssd_x25e ~blocks:256 () in
    let db = Mvcc.Db.create ~buffer_pages:64 ~wal_device ~commit_mode:mode () in
    let (module E : Mvcc.Engine.S) = Option.get (Mvcc.Engine.find "sias") in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    for i = 1 to 40 do
      let txn = E.begin_txn eng in
      Result.get_ok
        (E.insert eng txn table [| Mvcc.Value.Int i; Mvcc.Value.Int (i * 7) |]);
      E.commit eng txn |> Result.get_ok;
      Mvcc.Db.tick db
    done;
    ( Simclock.now db.Mvcc.Db.clock,
      Wal.bytes_written db.Mvcc.Db.wal,
      Wal.flush_count db.Mvcc.Db.wal,
      (Commitpipe.stats db.Mvcc.Db.commitpipe).Commitpipe.commit_fsyncs )
  in
  check "engine run identical under delay=0" true
    (run Commitpipe.Sync = run (Commitpipe.Group { delay = 0.0 }))

let test_async_ack_and_trickle () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let p =
    Commitpipe.create ~wal:w ~clock
      (Commitpipe.Async { interval = 0.5; max_bytes = 1_000_000 })
  in
  (match commit_txn w p ~xid:1 with
  | Commitpipe.Durable at -> checkf "acked at append time" 0.0 at
  | Commitpipe.Queued _ -> Alcotest.fail "async must ack inline");
  checki "nothing flushed yet" 0 (Wal.flushed_lsn w);
  checki "one commit in the loss window" 1 (Commitpipe.async_backlog p);
  Commitpipe.tick p;
  checki "no threshold met: still buffered" 0 (Wal.flushed_lsn w);
  Simclock.advance clock 0.6;
  Commitpipe.tick p;
  checki "time threshold flushes" (Wal.current_lsn w) (Wal.flushed_lsn w);
  checki "loss window drained" 0 (Commitpipe.async_backlog p);
  let st = Commitpipe.stats p in
  checki "walwriter did the flush" 1 st.Commitpipe.walwriter_flushes;
  checki "no commit-path fsyncs" 0 st.Commitpipe.commit_fsyncs;
  checki "acks counted" 1 st.Commitpipe.async_acked

let test_async_byte_threshold () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let p =
    Commitpipe.create ~wal:w ~clock
      (Commitpipe.Async { interval = 1000.0; max_bytes = 64 })
  in
  ignore (commit_txn w p ~xid:1);
  Commitpipe.tick p;
  checki "under the byte threshold: buffered" 0 (Wal.flushed_lsn w);
  ignore (commit_txn w p ~xid:2);
  ignore (commit_txn w p ~xid:3);
  Commitpipe.tick p;
  checki "byte threshold flushes without time passing" (Wal.current_lsn w)
    (Wal.flushed_lsn w);
  checki "backlog drained" 0 (Commitpipe.async_backlog p)

let test_before_checkpoint_flushes () =
  (* the checkpoint hook must leave no buffered commit record behind,
     whichever pipeline is active *)
  let run mode =
    let clock = Simclock.create () in
    let w = Wal.create ~clock () in
    let p = Commitpipe.create ~wal:w ~clock mode in
    ignore (commit_txn w p ~xid:1);
    Commitpipe.before_checkpoint p;
    ignore (Commitpipe.drain_resolved p);
    Wal.flushed_lsn w = Wal.current_lsn w
  in
  check "group window closed ahead of checkpoint" true
    (run (Commitpipe.Group { delay = 5.0 }));
  check "async backlog flushed ahead of checkpoint" true
    (run (Commitpipe.Async { interval = 1000.0; max_bytes = 1_000_000 }))

(* ------------- async commit: crash recovery properties ------------- *)

(* Replay a random interleaving of commits and clock advances against an
   async pipeline, then crash. Returns (acked xids in order, loss window
   at the crash, committed xids that survive replay, tail verdict). *)
let run_async_ops ?device ?faults ops =
  let clock = Simclock.create () in
  let w = Wal.create ?device ?faults ~clock () in
  let p =
    Commitpipe.create ~wal:w ~clock
      (Commitpipe.Async { interval = 0.05; max_bytes = 4096 })
  in
  let acked = ref [] in
  let xid = ref 0 in
  List.iter
    (fun (is_commit, k) ->
      if is_commit then begin
        incr xid;
        ignore
          (Wal.append w ~xid:!xid ~rel:0 ~kind:Wal.Insert
             ~payload:(Bytes.make (k * 16) 'd'));
        let lsn =
          Wal.append w ~xid:!xid ~rel:0 ~kind:Wal.Commit ~payload:Bytes.empty
        in
        (match Commitpipe.commit p ~xid:!xid ~lsn with
        | Commitpipe.Durable _ -> acked := !xid :: !acked
        | Commitpipe.Queued _ -> failwith "async must ack inline")
      end
      else Simclock.advance clock (float_of_int k /. 100.0);
      Commitpipe.tick p)
    ops;
  let backlog = Commitpipe.async_backlog p in
  Wal.crash w;
  let recs, tail = Wal.verified_from w ~lsn:1 in
  let survivors =
    List.filter_map
      (fun r -> if r.Wal.kind = Wal.Commit then Some r.Wal.xid else None)
      recs
  in
  (List.rev !acked, backlog, survivors, tail)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let qcheck_async_crash_no_faults =
  QCheck.Test.make ~name:"async crash: survivors = acked minus loss window"
    ~count:150
    QCheck.(list_of_size Gen.(int_range 1 80) (pair bool (int_bound 50)))
    (fun ops ->
      let acked, backlog, survivors, tail = run_async_ops ops in
      (* without faults nothing tears: the loss window is exact *)
      tail = `Clean
      && survivors = take (List.length acked - backlog) acked)

let qcheck_async_crash_torn =
  QCheck.Test.make
    ~name:"async crash with torn writes: prefix of acks, never corrupt"
    ~count:150
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(int_range 1 80) (pair bool (int_bound 50))))
    (fun (seed, ops) ->
      let device = Device.ssd_x25e ~blocks:256 () in
      let faults =
        Faultdev.create
          ~profile:{ Faultdev.none with Faultdev.torn_write_p = 1.0 }
          ~seed ()
      in
      (* verified_from raising Corrupt_wal fails the property loudly *)
      let acked, _, survivors, _ = run_async_ops ~device ~faults ops in
      is_prefix survivors acked)

let suite =
  [
    Alcotest.test_case "group: one fsync per window" `Quick
      test_group_shares_one_fsync;
    Alcotest.test_case "group: overdue window closed by next commit" `Quick
      test_group_overdue_closed_by_next_commit;
    Alcotest.test_case "group: fsync does not stall the clock" `Quick
      test_group_fsync_does_not_stall_clock;
    Alcotest.test_case "group: delay=0 identical to sync" `Quick
      test_group_delay_zero_is_sync;
    Alcotest.test_case "db: delay=0 deterministic vs sync" `Quick
      test_db_group_delay_zero_determinism;
    Alcotest.test_case "async: ack at append, trickle on time" `Quick
      test_async_ack_and_trickle;
    Alcotest.test_case "async: byte threshold" `Quick test_async_byte_threshold;
    Alcotest.test_case "checkpoint hook flushes buffered commits" `Quick
      test_before_checkpoint_flushes;
    QCheck_alcotest.to_alcotest qcheck_async_crash_no_faults;
    QCheck_alcotest.to_alcotest qcheck_async_crash_torn;
  ]
