(* Tests for the contention subsystem: conflict policies, the retry
   orchestrator, admission control and the online SI checker — including
   a randomized interleaved-transaction torture run over every engine and
   policy. *)

module C = Sias_txn.Contention
module Lockmgr = Sias_txn.Lockmgr
module Txn = Sias_txn.Txn
module Snapshot = Sias_txn.Snapshot
module Simclock = Sias_util.Simclock
module Value = Mvcc.Value

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let make ?settings () =
  let clock = Simclock.create () in
  let lockmgr = Lockmgr.create () in
  (clock, lockmgr, C.create ?settings ~clock ~lockmgr ())

let with_policy policy = { C.default_settings with C.policy }

(* ---------------- conflict policies ---------------- *)

let test_no_wait () =
  let clock, _, c = make ~settings:(with_policy C.No_wait) () in
  check "first granted" true (C.acquire c ~xid:1 ~rel:0 ~key:1 = C.Granted);
  check "conflict aborts at once" true (C.acquire c ~xid:2 ~rel:0 ~key:1 = C.Abort_self);
  Alcotest.(check (float 0.0)) "no waiting charged" 0.0 (Simclock.now clock);
  checki "conflict counted" 1 (C.stats c).C.conflicts;
  checki "no waits" 0 (C.stats c).C.waits

let test_wait_die () =
  let clock, _, c = make ~settings:(with_policy C.Wait_die) () in
  (* younger owner (xid 5), older requester (xid 2): older waits *)
  check "owner" true (C.acquire c ~xid:5 ~rel:0 ~key:1 = C.Granted);
  check "older waits, then aborts" true (C.acquire c ~xid:2 ~rel:0 ~key:1 = C.Abort_self);
  checki "one wait" 1 (C.stats c).C.waits;
  checki "one timeout" 1 (C.stats c).C.wait_timeouts;
  check "clock charged" true (Simclock.now clock >= C.default_settings.C.max_wait_s);
  checki "no die yet" 0 (C.stats c).C.dies;
  (* younger requester (xid 9) dies immediately, no clock charge *)
  let before = Simclock.now clock in
  check "younger dies" true (C.acquire c ~xid:9 ~rel:0 ~key:1 = C.Abort_self);
  checki "die counted" 1 (C.stats c).C.dies;
  Alcotest.(check (float 0.0)) "die is instant" before (Simclock.now clock)

let test_wound_wait () =
  let _, lm, c = make ~settings:(with_policy C.Wound_wait) () in
  (* younger owner (xid 5); older requester (xid 2) wounds it *)
  check "owner" true (C.acquire c ~xid:5 ~rel:0 ~key:1 = C.Granted);
  check "older still blocked this round" true
    (C.acquire c ~xid:2 ~rel:0 ~key:1 = C.Abort_self);
  checki "wound counted" 1 (C.stats c).C.wounds;
  check "owner doomed" true (C.is_doomed c ~xid:5);
  (* the doomed owner's next lock request fails as a victim abort *)
  check "victim aborts on next acquire" true
    (C.acquire c ~xid:5 ~rel:0 ~key:2 = C.Abort_self);
  checki "victim abort counted" 1 (C.stats c).C.victim_aborts;
  (* once the victim is gone its locks free up and the doom mark clears *)
  Lockmgr.release_all lm ~xid:5;
  C.finished c ~xid:5;
  check "doom cleared" false (C.is_doomed c ~xid:5);
  check "older retry wins" true (C.acquire c ~xid:2 ~rel:0 ~key:1 = C.Granted);
  (* an older owner is never wounded by a younger requester *)
  check "younger just waits" true (C.acquire c ~xid:9 ~rel:0 ~key:1 = C.Abort_self);
  check "older owner not doomed" false (C.is_doomed c ~xid:2);
  checki "still one wound" 1 (C.stats c).C.wounds

let test_detect_self_victim () =
  let _, _, c = make ~settings:(with_policy C.Detect) () in
  check "t1 holds k1" true (C.acquire c ~xid:1 ~rel:0 ~key:1 = C.Granted);
  check "t2 holds k2" true (C.acquire c ~xid:2 ~rel:0 ~key:2 = C.Granted);
  (* t1 stalls on k2; its wait-for edge persists after the timeout *)
  check "t1 blocked on k2" true (C.acquire c ~xid:1 ~rel:0 ~key:2 = C.Abort_self);
  (* t2 requesting k1 closes the cycle; the youngest member (t2 itself)
     is the victim *)
  check "t2 self-victim" true (C.acquire c ~xid:2 ~rel:0 ~key:1 = C.Abort_self);
  checki "deadlock counted" 1 (C.stats c).C.deadlocks;
  check "self-victim not doomed" false (C.is_doomed c ~xid:2)

let test_detect_dooms_youngest_peer () =
  let _, _, c = make ~settings:(with_policy C.Detect) () in
  check "t1 holds k1" true (C.acquire c ~xid:1 ~rel:0 ~key:1 = C.Granted);
  check "t2 holds k2" true (C.acquire c ~xid:2 ~rel:0 ~key:2 = C.Granted);
  (* t2 stalls on k1 first, leaving the 2 -> 1 edge in the graph *)
  check "t2 blocked on k1" true (C.acquire c ~xid:2 ~rel:0 ~key:1 = C.Abort_self);
  (* t1 requesting k2 closes the cycle; t2 is the youngest and is doomed *)
  check "t1 still blocked (owner lives)" true
    (C.acquire c ~xid:1 ~rel:0 ~key:2 = C.Abort_self);
  checki "deadlock counted" 1 (C.stats c).C.deadlocks;
  check "youngest peer doomed" true (C.is_doomed c ~xid:2);
  check "older not doomed" false (C.is_doomed c ~xid:1)

let test_doomed_acquire_counts_victim () =
  let _, _, c = make ~settings:(with_policy C.No_wait) () in
  check "granted" true (C.acquire c ~xid:3 ~rel:0 ~key:7 = C.Granted);
  C.finished c ~xid:3;
  checki "no victim aborts" 0 (C.stats c).C.victim_aborts

(* ---------------- retry orchestrator ---------------- *)

let test_retry_completes_first_try () =
  let clock, _, c = make () in
  let cfg = C.retry_config () in
  (match C.run_with_retries c ~cfg ~retryable:(fun _ -> false) ~f:(fun ~attempt -> attempt) with
  | C.Completed (v, n) ->
      checki "value" 1 v;
      checki "one attempt" 1 n
  | C.Gave_up _ -> Alcotest.fail "gave up on non-retryable result");
  Alcotest.(check (float 0.0)) "no backoff charged" 0.0 (Simclock.now clock)

let test_retry_backs_off_then_completes () =
  let clock, _, c = make () in
  let cfg = C.retry_config ~max_attempts:6 ~base_backoff_s:0.002 () in
  (match
     C.run_with_retries c ~cfg
       ~retryable:(fun ok -> not ok)
       ~f:(fun ~attempt -> attempt >= 3)
   with
  | C.Completed (ok, n) ->
      check "completed" true ok;
      checki "three attempts" 3 n
  | C.Gave_up _ -> Alcotest.fail "should have completed");
  checki "two resubmissions" 2 (C.stats c).C.retries;
  (* two backoffs, each jittered into [0.5, 1) of 2ms then 4ms *)
  check "simulated backoff charged" true (Simclock.now clock >= 0.003);
  check "capped below maxima" true (Simclock.now clock < 0.006)

let test_retry_attempts_exhausted () =
  let _, _, c = make () in
  let cfg = C.retry_config ~max_attempts:4 () in
  (match C.run_with_retries c ~cfg ~retryable:(fun _ -> true) ~f:(fun ~attempt:_ -> ()) with
  | C.Gave_up (C.Attempts_exhausted, n) -> checki "all attempts used" 4 n
  | _ -> Alcotest.fail "expected Attempts_exhausted");
  checki "give-up counted" 1 (C.stats c).C.give_ups;
  checki "three resubmissions" 3 (C.stats c).C.retries

let test_retry_deadline () =
  let _, _, c = make () in
  (* the first backoff (>= 0.5 * 0.1s) already breaks a 1 ms deadline *)
  let cfg = C.retry_config ~max_attempts:10 ~base_backoff_s:0.1 ~deadline_s:0.001 () in
  (match C.run_with_retries c ~cfg ~retryable:(fun _ -> true) ~f:(fun ~attempt:_ -> ()) with
  | C.Gave_up (C.Deadline_exceeded, n) -> checki "stopped on first attempt" 1 n
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  checki "no resubmission" 0 (C.stats c).C.retries

let test_retry_jitter_deterministic () =
  let run () =
    let clock, _, c = make () in
    let cfg = C.retry_config ~max_attempts:5 () in
    ignore (C.run_with_retries c ~cfg ~retryable:(fun _ -> true) ~f:(fun ~attempt:_ -> ()));
    Simclock.now clock
  in
  Alcotest.(check (float 0.0)) "same seed, same backoff" (run ()) (run ())

(* ---------------- admission control ---------------- *)

let test_admission_unlimited () =
  let clock, _, c = make () in
  for _ = 1 to 100 do
    check "always admitted" true (C.admit c = C.Admitted)
  done;
  Alcotest.(check (float 0.0)) "free" 0.0 (Simclock.now clock)

let test_admission_cap_and_queue () =
  let clock, _, c =
    make
      ~settings:
        { C.default_settings with C.max_inflight = Some 2; queue_capacity = 4; queue_timeout_s = 0.1 }
      ()
  in
  check "1st admitted" true (C.admit c = C.Admitted);
  check "2nd admitted" true (C.admit c = C.Admitted);
  checki "two in flight" 2 (C.inflight c);
  (* over the cap: queue, pay the timeout, no slot frees -> shed *)
  check "3rd shed after queueing" true (C.admit c = C.Shed);
  checki "queued counted" 1 (C.stats c).C.queued;
  checki "shed counted" 1 (C.stats c).C.shed;
  check "queue timeout charged" true (Simclock.now clock >= 0.1);
  C.release c;
  checki "release frees a slot" 1 (C.inflight c);
  check "next request admitted" true (C.admit c = C.Admitted);
  checki "admissions counted" 3 (C.stats c).C.admitted

let test_admission_queue_full_sheds_instantly () =
  let clock, _, c =
    make
      ~settings:{ C.default_settings with C.max_inflight = Some 1; queue_capacity = 0 }
      ()
  in
  check "1st admitted" true (C.admit c = C.Admitted);
  check "2nd shed" true (C.admit c = C.Shed);
  Alcotest.(check (float 0.0)) "no queue charge" 0.0 (Simclock.now clock)

(* ---------------- the SI checker, driven directly ---------------- *)

module Sichecker = Mvcc.Sichecker

let row v = Some [| Value.Int 1; Value.Int v |]

let test_checker_clean_history () =
  let mgr = Txn.create_mgr () in
  let ck = Sichecker.create () in
  let begin_observed () =
    let t = Txn.begin_txn mgr in
    Sichecker.on_begin ck ~xid:t.Txn.xid ~snapshot:t.Txn.snapshot;
    t
  in
  let t1 = begin_observed () in
  Sichecker.on_write ck ~xid:t1.Txn.xid ~rel:0 ~pk:1 ~row:(row 10);
  (* own pending write reads back *)
  Sichecker.on_read ck ~xid:t1.Txn.xid ~rel:0 ~pk:1 ~row:(row 10);
  Txn.commit mgr t1;
  Sichecker.on_commit ck ~xid:t1.Txn.xid;
  (* a later snapshot sees the committed version *)
  let t2 = begin_observed () in
  Sichecker.on_read ck ~xid:t2.Txn.xid ~rel:0 ~pk:1 ~row:(row 10);
  (* a concurrent writer commits; t2's reads must stay on the old version *)
  let t3 = begin_observed () in
  Sichecker.on_write ck ~xid:t3.Txn.xid ~rel:0 ~pk:1 ~row:(row 20);
  Txn.commit mgr t3;
  Sichecker.on_commit ck ~xid:t3.Txn.xid;
  Sichecker.on_read ck ~xid:t2.Txn.xid ~rel:0 ~pk:1 ~row:(row 10);
  Txn.commit mgr t2;
  Sichecker.on_commit ck ~xid:t2.Txn.xid;
  checki "silent" 0 (Sichecker.violation_count ck);
  check "reads were checked" true (Sichecker.reads_checked ck >= 3);
  check "report says OK" true
    (String.length (Sichecker.report ck) >= 13
    && String.sub (Sichecker.report ck) 0 13 = "si-checker: O")

let test_checker_catches_stale_and_future_reads () =
  let mgr = Txn.create_mgr () in
  let ck = Sichecker.create () in
  let t1 = Txn.begin_txn mgr in
  Sichecker.on_begin ck ~xid:t1.Txn.xid ~snapshot:t1.Txn.snapshot;
  Sichecker.on_write ck ~xid:t1.Txn.xid ~rel:0 ~pk:1 ~row:(row 10);
  Txn.commit mgr t1;
  Sichecker.on_commit ck ~xid:t1.Txn.xid;
  let t2 = Txn.begin_txn mgr in
  Sichecker.on_begin ck ~xid:t2.Txn.xid ~snapshot:t2.Txn.snapshot;
  let t3 = Txn.begin_txn mgr in
  Sichecker.on_begin ck ~xid:t3.Txn.xid ~snapshot:t3.Txn.snapshot;
  Sichecker.on_write ck ~xid:t3.Txn.xid ~rel:0 ~pk:1 ~row:(row 20);
  Txn.commit mgr t3;
  Sichecker.on_commit ck ~xid:t3.Txn.xid;
  (* t2 reading t3's version is a snapshot violation (committed after t2
     began); reading a wrong digest is too; reading absence likewise *)
  Sichecker.on_read ck ~xid:t2.Txn.xid ~rel:0 ~pk:1 ~row:(row 20);
  checki "future read caught" 1 (Sichecker.violation_count ck);
  Sichecker.on_read ck ~xid:t2.Txn.xid ~rel:0 ~pk:1 ~row:(row 99);
  checki "wrong row caught" 2 (Sichecker.violation_count ck);
  Sichecker.on_read ck ~xid:t2.Txn.xid ~rel:0 ~pk:1 ~row:None;
  checki "lost row caught" 3 (Sichecker.violation_count ck)

let test_checker_catches_fcw () =
  let mgr = Txn.create_mgr () in
  let ck = Sichecker.create () in
  (* two overlapping transactions both commit a write to the same item *)
  let t1 = Txn.begin_txn mgr in
  Sichecker.on_begin ck ~xid:t1.Txn.xid ~snapshot:t1.Txn.snapshot;
  let t2 = Txn.begin_txn mgr in
  Sichecker.on_begin ck ~xid:t2.Txn.xid ~snapshot:t2.Txn.snapshot;
  Sichecker.on_write ck ~xid:t1.Txn.xid ~rel:0 ~pk:5 ~row:(row 1);
  Sichecker.on_write ck ~xid:t2.Txn.xid ~rel:0 ~pk:5 ~row:(row 2);
  Txn.commit mgr t1;
  Sichecker.on_commit ck ~xid:t1.Txn.xid;
  Txn.commit mgr t2;
  Sichecker.on_commit ck ~xid:t2.Txn.xid;
  checki "first-committer-wins breach caught" 1 (Sichecker.violation_count ck);
  (* disjoint items stay silent *)
  checki "commits checked" 2 (Sichecker.commits_checked ck)

(* ---------------- engine integration: wound at commit ---------------- *)

let test_wound_wait_through_engine () =
  let module E = Mvcc.Si_engine in
  let db = Mvcc.Db.create ~buffer_pages:128 ~contention:(with_policy C.Wound_wait) () in
  let ck = Mvcc.Sichecker.attach (Mvcc.Db.bus db) in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let setup = E.begin_txn eng in
  Result.get_ok (E.insert eng setup table [| Value.Int 1; Value.Int 0 |]);
  E.commit eng setup |> Result.get_ok;
  let older = E.begin_txn eng in
  let younger = E.begin_txn eng in
  (* the younger transaction grabs the row's writer lock *)
  Result.get_ok
    (E.update eng younger table ~pk:1 (fun r ->
         let r = Array.copy r in
         r.(1) <- Value.Int 100;
         r));
  (* the older transaction conflicts and wounds it *)
  check "older sees a conflict this round" true
    (E.update eng older table ~pk:1 (fun r -> r) = Error Mvcc.Engine.Write_conflict);
  check "younger doomed" true (C.is_doomed db.Mvcc.Db.contention ~xid:younger.Txn.xid);
  (* the victim reaching commit is aborted and told so *)
  (try
     E.commit eng younger |> Result.get_ok;
     Alcotest.fail "wounded transaction must not commit"
   with C.Wounded x -> checki "victim identified" younger.Txn.xid x);
  check "victim really aborted" true (Txn.status db.Mvcc.Db.txnmgr younger.Txn.xid = Txn.Aborted);
  (* with the victim gone the older transaction goes through *)
  Result.get_ok
    (E.update eng older table ~pk:1 (fun r ->
         let r = Array.copy r in
         r.(1) <- Value.Int 7;
         r));
  E.commit eng older |> Result.get_ok;
  let final = E.begin_txn eng in
  (match E.read eng final table ~pk:1 with
  | Some r -> checki "older transaction's write survives" 7 (Value.int r.(1))
  | None -> Alcotest.fail "row lost");
  E.commit eng final |> Result.get_ok;
  checki "checker silent throughout" 0 (Sichecker.violation_count ck)

(* ---------------- randomized interleaved torture ---------------- *)

(* Random interleavings of three transaction slots over eight keys, for
   every engine and policy: the run must terminate, committed state must
   follow the per-slot pending-write model, reads must be snapshot
   consistent, and the online checker must stay silent. *)
module Torture (E : Mvcc.Engine.S) = struct
  type slot = {
    txn : Txn.t;
    snap_vals : int array;  (* committed model state at begin *)
    pending : (int, int) Hashtbl.t;  (* key -> value written by this txn *)
  }

  let run ~policy ops =
    let db = Mvcc.Db.create ~buffer_pages:128 ~contention:(with_policy policy) () in
    let ck = Mvcc.Sichecker.attach (Mvcc.Db.bus db) in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let nkeys = 8 in
    let boot = E.begin_txn eng in
    for k = 0 to nkeys - 1 do
      Result.get_ok (E.insert eng boot table [| Value.Int k; Value.Int 0 |])
    done;
    E.commit eng boot |> Result.get_ok;
    let committed = Array.make nkeys 0 in
    let slots = Array.make 3 None in
    let fresh = ref 0 in
    let ok = ref true in
    let ensure s =
      match slots.(s) with
      | Some sl -> sl
      | None ->
          let sl =
            {
              txn = E.begin_txn eng;
              snap_vals = Array.copy committed;
              pending = Hashtbl.create 8;
            }
          in
          slots.(s) <- Some sl;
          sl
    in
    let finish s = slots.(s) <- None in
    List.iter
      (fun (s, op) ->
        let sl = ensure s in
        if op = 0 then begin
          (* commit: apply the model only if the engine committed *)
          (try
             E.commit eng sl.txn |> Result.get_ok;
             Hashtbl.iter (fun k v -> committed.(k) <- v) sl.pending
           with C.Wounded _ -> ());
          finish s
        end
        else if op = 1 then begin
          E.abort eng sl.txn;
          finish s
        end
        else if op <= 9 then begin
          (* update key (op - 2) with a fresh value; a refused write
             leaves the transaction usable *)
          let k = op - 2 in
          incr fresh;
          let v = !fresh in
          match
            E.update eng sl.txn table ~pk:k (fun r ->
                let r = Array.copy r in
                r.(1) <- Value.Int v;
                r)
          with
          | Ok () -> Hashtbl.replace sl.pending k v
          | Error _ -> ()
        end
        else begin
          (* read a key: own write, else the value from the begin-time
             snapshot of the committed model *)
          let k = op mod nkeys in
          let expected =
            match Hashtbl.find_opt sl.pending k with
            | Some v -> v
            | None -> sl.snap_vals.(k)
          in
          match E.read eng sl.txn table ~pk:k with
          | Some r -> if Value.int r.(1) <> expected then ok := false
          | None -> ok := false
        end)
      ops;
    Array.iteri
      (fun s sl -> match sl with Some sl -> E.abort eng sl.txn; slots.(s) <- None | None -> ())
      slots;
    let final = E.begin_txn eng in
    for k = 0 to nkeys - 1 do
      match E.read eng final table ~pk:k with
      | Some r -> if Value.int r.(1) <> committed.(k) then ok := false
      | None -> ok := false
    done;
    E.commit eng final |> Result.get_ok;
    !ok && Sichecker.violation_count ck = 0

  let qcheck_test name =
    QCheck.Test.make ~name ~count:15
      QCheck.(
        list_of_size Gen.(int_range 20 80) (pair (int_bound 2) (int_bound 15)))
      (fun ops -> List.for_all (fun policy -> run ~policy ops) C.all_policies)
end

module Torture_si = Torture (Mvcc.Si_engine)
module Torture_sicv = Torture (Mvcc.Si_cv_engine)
module Torture_sias = Torture (Mvcc.Sias_engine)
module Torture_siasv = Torture (Mvcc.Sias_vector)

let suite =
  [
    Alcotest.test_case "no-wait aborts at once" `Quick test_no_wait;
    Alcotest.test_case "wait-die: older waits, younger dies" `Quick test_wait_die;
    Alcotest.test_case "wound-wait dooms the younger owner" `Quick test_wound_wait;
    Alcotest.test_case "detect: youngest self-victim" `Quick test_detect_self_victim;
    Alcotest.test_case "detect dooms youngest peer" `Quick test_detect_dooms_youngest_peer;
    Alcotest.test_case "clean finish leaves no doom" `Quick test_doomed_acquire_counts_victim;
    Alcotest.test_case "retry: completes first try" `Quick test_retry_completes_first_try;
    Alcotest.test_case "retry: backoff then success" `Quick test_retry_backs_off_then_completes;
    Alcotest.test_case "retry: attempts exhausted" `Quick test_retry_attempts_exhausted;
    Alcotest.test_case "retry: deadline exceeded" `Quick test_retry_deadline;
    Alcotest.test_case "retry: deterministic jitter" `Quick test_retry_jitter_deterministic;
    Alcotest.test_case "admission: unlimited is free" `Quick test_admission_unlimited;
    Alcotest.test_case "admission: cap, queue, shed, release" `Quick
      test_admission_cap_and_queue;
    Alcotest.test_case "admission: full queue sheds instantly" `Quick
      test_admission_queue_full_sheds_instantly;
    Alcotest.test_case "checker: clean histories stay silent" `Quick
      test_checker_clean_history;
    Alcotest.test_case "checker: stale and future reads" `Quick
      test_checker_catches_stale_and_future_reads;
    Alcotest.test_case "checker: first-committer-wins" `Quick test_checker_catches_fcw;
    Alcotest.test_case "wound-wait through the engine" `Quick test_wound_wait_through_engine;
    QCheck_alcotest.to_alcotest (Torture_si.qcheck_test "SI: interleaved torture");
    QCheck_alcotest.to_alcotest (Torture_sicv.qcheck_test "SI-CV: interleaved torture");
    QCheck_alcotest.to_alcotest (Torture_sias.qcheck_test "SIAS: interleaved torture");
    QCheck_alcotest.to_alcotest (Torture_siasv.qcheck_test "SIAS-V: interleaved torture");
  ]
