(* Unit tests for the smaller mvcc pieces: values, tuple headers,
   visibility predicates and the WAL codec. *)

module Value = Mvcc.Value
module Tuple = Mvcc.Tuple
module Visibility = Mvcc.Visibility
module Tid = Sias_storage.Tid
module Txn = Sias_txn.Txn

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_value_roundtrip () =
  let row =
    [| Value.Int 42; Value.Float 3.25; Value.Str "hello world"; Value.Int (-7); Value.Str "" |]
  in
  let b = Value.encode_row row in
  let row' = Value.decode_row b ~pos:0 in
  check "roundtrip" true (Value.row_equal row row')

let qcheck_value_roundtrip =
  let gen_value =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun i -> Value.Int i) int);
          (2, map (fun f -> Value.Float f) (float_range (-1e9) 1e9));
          (2, map (fun s -> Value.Str s) (string_size (int_bound 80)));
        ])
  in
  QCheck.Test.make ~name:"row encode/decode roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(array_size (int_range 0 12) gen_value))
    (fun row ->
      let b = Value.encode_row row in
      Value.row_equal row (Value.decode_row b ~pos:0))

let test_value_accessors () =
  checki "int" 5 (Value.int (Value.Int 5));
  Alcotest.(check (float 0.0)) "float" 2.5 (Value.float (Value.Float 2.5));
  Alcotest.(check (float 0.0)) "int as float" 5.0 (Value.float (Value.Int 5));
  Alcotest.(check string) "str" "x" (Value.str (Value.Str "x"));
  Alcotest.check_raises "wrong accessor" (Invalid_argument "Value.int") (fun () ->
      ignore (Value.int (Value.Str "no")))

let test_value_keys () =
  checki "int key" 7 (Value.to_key (Value.Int 7));
  checki "float key fixed point" 150 (Value.to_key (Value.Float 1.5));
  check "str keys deterministic" true
    (Value.to_key (Value.Str "abc") = Value.to_key (Value.Str "abc"));
  check "str keys differ" true (Value.to_key (Value.Str "abc") <> Value.to_key (Value.Str "abd"))

let test_si_header () =
  let row = [| Value.Int 1; Value.Str "data" |] in
  let item = Tuple.Si.encode ~xmin:7 ~row in
  let h = Tuple.Si.header item in
  checki "xmin" 7 h.Tuple.Si.xmin;
  checki "xmax clear" 0 h.Tuple.Si.xmax;
  check "row" true (Value.row_equal row (Tuple.Si.row item));
  let len_before = Bytes.length item in
  Tuple.Si.patch_xmax item 9;
  checki "patched xmax" 9 (Tuple.Si.header item).Tuple.Si.xmax;
  checki "same length (in-place)" len_before (Bytes.length item);
  Tuple.Si.clear_xmax item;
  checki "cleared" 0 (Tuple.Si.header item).Tuple.Si.xmax;
  check "row undamaged by patches" true (Value.row_equal row (Tuple.Si.row item))

let test_sias_header () =
  let row = [| Value.Int 1; Value.Str "data" |] in
  let pred = Tid.make ~block:5 ~slot:3 in
  let item = Tuple.Sias.encode ~create:11 ~seq:2 ~vid:99 ~pred ~tombstone:false ~row in
  let h = Tuple.Sias.header item in
  checki "create" 11 h.Tuple.Sias.create;
  checki "seq" 2 h.Tuple.Sias.seq;
  checki "vid" 99 h.Tuple.Sias.vid;
  check "pred" true (Tid.equal pred h.Tuple.Sias.pred);
  check "not tombstone" false h.Tuple.Sias.tombstone;
  check "row" true (Value.row_equal row (Tuple.Sias.row item));
  (* no invalidation field exists: the only mutation is the GC pred patch *)
  Tuple.Sias.patch_pred item Tid.invalid;
  check "pred patched" true (Tid.is_invalid (Tuple.Sias.header item).Tuple.Sias.pred);
  let ts = Tuple.Sias.encode ~create:1 ~seq:1 ~vid:0 ~pred:Tid.invalid ~tombstone:true ~row in
  check "tombstone flag" true (Tuple.Sias.header ts).Tuple.Sias.tombstone

let test_si_visibility () =
  let mgr = Txn.create_mgr () in
  let t1 = Txn.begin_txn mgr in
  Txn.commit mgr t1;
  let t2 = Txn.begin_txn mgr in
  let h xmin xmax = { Tuple.Si.xmin; xmax; xmin_hint = 0; xmax_hint = 0 } in
  check "committed, not invalidated" true (Visibility.si_visible mgr t2.Txn.snapshot (h 1 0));
  check "invalidated by self" false
    (Visibility.si_visible mgr t2.Txn.snapshot (h 1 t2.Txn.xid));
  let t3 = Txn.begin_txn mgr in
  (* t3 invalidates; t2 cannot see t3 *)
  check "invalidated by invisible txn -> still visible" true
    (Visibility.si_visible mgr t2.Txn.snapshot (h 1 t3.Txn.xid));
  Txn.commit mgr t3;
  check "still visible after that commit (snapshot)" true
    (Visibility.si_visible mgr t2.Txn.snapshot (h 1 t3.Txn.xid));
  Txn.commit mgr t2;
  let t4 = Txn.begin_txn mgr in
  check "new snapshot sees the invalidation" false
    (Visibility.si_visible mgr t4.Txn.snapshot (h 1 t3.Txn.xid));
  Txn.commit mgr t4

let test_dead_for_all () =
  let mgr = Txn.create_mgr () in
  let t1 = Txn.begin_txn mgr in
  Txn.commit mgr t1;
  let t2 = Txn.begin_txn mgr in
  Txn.commit mgr t2;
  let horizon = Txn.horizon mgr in
  (* invalidated by t2, which everyone sees now *)
  check "si dead" true
    (Visibility.si_dead_for_all mgr ~horizon { Tuple.Si.xmin = 1; xmax = 2; xmin_hint = 0; xmax_hint = 0 });
  check "si alive when not invalidated" false
    (Visibility.si_dead_for_all mgr ~horizon { Tuple.Si.xmin = 1; xmax = 0; xmin_hint = 0; xmax_hint = 0 });
  check "sias dead with committed successor" true
    (Visibility.sias_dead_for_all mgr ~horizon ~create:1 ~successor_create:(Some 2));
  check "sias newest stays" false
    (Visibility.sias_dead_for_all mgr ~horizon ~create:2 ~successor_create:None);
  (* an active old snapshot protects the predecessor *)
  let t3 = Txn.begin_txn mgr in
  let t4 = Txn.begin_txn mgr in
  Txn.commit mgr t4;
  let horizon = Txn.horizon mgr in
  check "sias version protected by active snapshot" false
    (Visibility.sias_dead_for_all mgr ~horizon ~create:2
       ~successor_create:(Some t4.Txn.xid));
  Txn.commit mgr t3

let test_walcodec_roundtrip () =
  let tid = Tid.make ~block:77 ~slot:5 in
  let item = Bytes.of_string "some item image" in
  let tid', ao, item' = Mvcc.Walcodec.decode (Mvcc.Walcodec.encode tid item) in
  check "tid" true (Tid.equal tid tid');
  check "item" true (Bytes.equal item item');
  check "default flag" false ao;
  let _, ao', _ = Mvcc.Walcodec.decode (Mvcc.Walcodec.encode ~append_only:true tid item) in
  check "append flag carried" true ao'

let suite =
  [
    Alcotest.test_case "value row roundtrip" `Quick test_value_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_value_roundtrip;
    Alcotest.test_case "value accessors" `Quick test_value_accessors;
    Alcotest.test_case "value index keys" `Quick test_value_keys;
    Alcotest.test_case "SI tuple header" `Quick test_si_header;
    Alcotest.test_case "SIAS tuple header" `Quick test_sias_header;
    Alcotest.test_case "SI visibility matrix" `Quick test_si_visibility;
    Alcotest.test_case "dead-for-all criteria" `Quick test_dead_for_all;
    Alcotest.test_case "wal codec roundtrip" `Quick test_walcodec_roundtrip;
  ]
