(* First-class isolation levels: write skew and other SI anomalies must
   be rejected under [`Ssi] (PostgreSQL-style dangerous-structure
   aborts) and [`Wsi] (read-set certification) while serializable
   histories commit — across all four registered engines and every
   commit mode. The [Sichecker]'s cycle detector adjudicates: anomalies
   it observes under plain SI must be absent (via abort) under the
   serializable levels. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Ssimgr = Mvcc.Ssimgr
module Sichecker = Mvcc.Sichecker
module Bus = Sias_obs.Bus
module Commitpipe = Sias_wal.Commitpipe

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let row k v = [| Value.Int k; Value.Int v |]

let engines = [ "si"; "si-cv"; "sias"; "sias-v" ]

let level_aborts db =
  match Db.ssimgr db with
  | None -> 0
  | Some m -> Ssimgr.pivot_aborts m + Ssimgr.certify_aborts m

let is_ser = function Error Engine.Serialization_failure -> true | _ -> false

module Make (E : Engine.S) = struct
  let fresh isolation =
    let db = Db.create ~isolation () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    (db, eng, table)

  let seed eng table pairs =
    let txn = E.begin_txn eng in
    List.iter (fun (k, v) -> E.insert eng txn table (row k v) |> Result.get_ok) pairs;
    E.commit eng txn |> Result.get_ok

  let set_v v r =
    let r = Array.copy r in
    r.(1) <- Value.Int v;
    r

  (* The canonical write-skew: both txns read x and y, T1 writes x, T2
     writes y. Plain SI commits both; SSI/WSI must abort at least one. *)
  let test_write_skew_prevented isolation () =
    let db, eng, table = fresh isolation in
    seed eng table [ (1, 50); (2, 50) ];
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    ignore (E.read eng t1 table ~pk:1);
    ignore (E.read eng t1 table ~pk:2);
    ignore (E.read eng t2 table ~pk:1);
    ignore (E.read eng t2 table ~pk:2);
    E.update eng t1 table ~pk:1 (set_v 0) |> Result.get_ok;
    E.update eng t2 table ~pk:2 (set_v 0) |> Result.get_ok;
    let r1 = E.commit eng t1 in
    let r2 = E.commit eng t2 in
    check "at least one transaction aborted" true (is_ser r1 || is_ser r2);
    check "abort counted" true (level_aborts db >= 1);
    (* the surviving state is one of the two serializable outcomes *)
    let t = E.begin_txn eng in
    let v1 = Value.int (Option.get (E.read eng t table ~pk:1)).(1) in
    let v2 = Value.int (Option.get (E.read eng t table ~pk:2)).(1) in
    E.commit eng t |> Result.get_ok;
    check "not both decremented" true (not (v1 = 0 && v2 = 0))

  let test_serial_txns_unaffected isolation () =
    let db, eng, table = fresh isolation in
    seed eng table [ (1, 10) ];
    for i = 1 to 20 do
      let txn = E.begin_txn eng in
      E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok;
      check "serial commits succeed" true (E.commit eng txn = Ok ())
    done;
    checki "no serialization aborts" 0 (level_aborts db)

  let test_read_only_never_pivot isolation () =
    let _, eng, table = fresh isolation in
    seed eng table [ (1, 10); (2, 20) ];
    let reader = E.begin_txn eng in
    ignore (E.read eng reader table ~pk:1);
    let writer = E.begin_txn eng in
    E.update eng writer table ~pk:1 (set_v 99) |> Result.get_ok;
    E.commit eng writer |> Result.get_ok;
    ignore (E.read eng reader table ~pk:2);
    (* only outgoing edges (SSI) / an empty write set (WSI): commits *)
    check "read-only txn commits" true (E.commit eng reader = Ok ())

  let test_disjoint_writers_commit isolation () =
    let _, eng, table = fresh isolation in
    seed eng table [ (1, 10); (2, 20) ];
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    (* no shared reads: T1 touches only key 1, T2 only key 2 *)
    E.update eng t1 table ~pk:1 (set_v 11) |> Result.get_ok;
    E.update eng t2 table ~pk:2 (set_v 22) |> Result.get_ok;
    check "t1 commits" true (E.commit eng t1 = Ok ());
    check "t2 commits" true (E.commit eng t2 = Ok ())

  let test_scan_predicate_conflict isolation () =
    (* T1 scans the table (predicate read), T2 inserts a row T1 didn't
       see, T1 writes something based on its scan: dangerous structure *)
    let _, eng, table = fresh isolation in
    seed eng table [ (1, 10) ];
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    let _ = E.scan eng t1 table (fun _ -> ()) in
    E.insert eng t2 table (row 5 50) |> Result.get_ok;
    (* T2 also reads something T1 writes *)
    ignore (E.read eng t2 table ~pk:1);
    E.update eng t1 table ~pk:1 (set_v 0) |> Result.get_ok;
    let r2 = E.commit eng t2 in
    let r1 = E.commit eng t1 in
    check "cycle broken" true (is_ser r1 || is_ser r2)

  let suite name isolation =
    [
      Alcotest.test_case (name ^ ": write skew prevented") `Quick
        (test_write_skew_prevented isolation);
      Alcotest.test_case (name ^ ": serial txns unaffected") `Quick
        (test_serial_txns_unaffected isolation);
      Alcotest.test_case (name ^ ": read-only never pivot") `Quick
        (test_read_only_never_pivot isolation);
      Alcotest.test_case (name ^ ": disjoint writers commit") `Quick
        (test_disjoint_writers_commit isolation);
      Alcotest.test_case (name ^ ": scan predicate conflict") `Quick
        (test_scan_predicate_conflict isolation);
    ]
end

let scenario_suite key label isolation =
  let _, (module E : Engine.S) = Engine.resolve_exn key in
  let module M = Make (E) in
  M.suite (key ^ "/" ^ label) isolation

(* Fekete et al.'s read-only anomaly, run at every level. Under SI all
   three commit and the checker records the T1 -> T2 -> T3 -> T1 cycle;
   under SSI T1 is the pivot (in-edge from the committed reader T3,
   out-edge to the committed writer T2); under WSI T1 fails read
   certification against T2's concurrent committed write. *)
let test_read_only_anomaly key () =
  let _, (module E : Engine.S) = Engine.resolve_exn key in
  let set v r =
    let r = Array.copy r in
    r.(1) <- Value.Int v;
    r
  in
  let run isolation =
    let bus = Bus.create () in
    let db = Db.create ~bus ~isolation () in
    let ck = Sichecker.attach bus in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let s = E.begin_txn eng in
    E.insert eng s table (row 1 0) |> Result.get_ok;
    E.insert eng s table (row 2 0) |> Result.get_ok;
    E.commit eng s |> Result.get_ok;
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    ignore (E.read eng t1 table ~pk:1);
    ignore (E.read eng t1 table ~pk:2);
    E.update eng t2 table ~pk:1 (set 20) |> Result.get_ok;
    let r2 = E.commit eng t2 in
    let t3 = E.begin_txn eng in
    let x3 = Value.int (Option.get (E.read eng t3 table ~pk:1)).(1) in
    ignore (E.read eng t3 table ~pk:2);
    let r3 = E.commit eng t3 in
    E.update eng t1 table ~pk:2 (set (-11)) |> Result.get_ok;
    let r1 = E.commit eng t1 in
    checki "no SI violations" 0 (Sichecker.violation_count ck);
    (r1, r2, r3, x3, Sichecker.cycle_count ck)
  in
  let r1, r2, r3, x3, cycles = run `Si in
  check "si: all commit" true (r1 = Ok () && r2 = Ok () && r3 = Ok ());
  checki "si: T3 saw the deposit" 20 x3;
  check "si: checker observed the cycle" true (cycles >= 1);
  List.iter
    (fun isolation ->
      let r1, r2, r3, _, cycles = run isolation in
      check "serializable: T1 aborted" true (is_ser r1);
      check "serializable: T2/T3 commit" true (r2 = Ok () && r3 = Ok ());
      checki "serializable: no cycles" 0 cycles)
    [ `Ssi; `Wsi ]

(* Crash semantics: SIREAD locks, rw edges and doomed flags are volatile
   — none of it may survive {!Db.crash}, so post-recovery serial commits
   can never trip a stale dangerous structure. *)
let test_crash_wipes_tracking key () =
  let _, (module E : Engine.S) = Engine.resolve_exn key in
  let db = Db.create ~isolation:`Ssi () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let set_v v r =
    let r = Array.copy r in
    r.(1) <- Value.Int v;
    r
  in
  let s = E.begin_txn eng in
  E.insert eng s table (row 1 0) |> Result.get_ok;
  E.insert eng s table (row 2 0) |> Result.get_ok;
  E.commit eng s |> Result.get_ok;
  (* a half-built dangerous structure, in flight when the crash hits *)
  let t1 = E.begin_txn eng in
  let t2 = E.begin_txn eng in
  ignore (E.read eng t1 table ~pk:1);
  ignore (E.read eng t1 table ~pk:2);
  ignore (E.read eng t2 table ~pk:1);
  ignore (E.read eng t2 table ~pk:2);
  E.update eng t1 table ~pk:1 (set_v 7) |> Result.get_ok;
  E.update eng t2 table ~pk:2 (set_v 7) |> Result.get_ok;
  let mgr = Option.get (Db.ssimgr db) in
  check "locks were taken before the crash" true (Ssimgr.siread_locks mgr > 0);
  Db.crash db;
  E.recover eng;
  for i = 1 to 10 do
    let txn = E.begin_txn eng in
    ignore (E.read eng txn table ~pk:1);
    ignore (E.read eng txn table ~pk:2);
    E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok;
    check "post-recovery serial commit succeeds" true (E.commit eng txn = Ok ())
  done;
  checki "no spurious pivot aborts after recovery" 0 (Ssimgr.pivot_aborts mgr)

(* A read-only transaction that begins with no concurrent transactions
   runs on a safe snapshot: exempt from all tracking, never aborts. *)
let test_safe_snapshot key () =
  let _, (module E : Engine.S) = Engine.resolve_exn key in
  let db = Db.create ~isolation:`Ssi () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let s = E.begin_txn eng in
  E.insert eng s table (row 1 1) |> Result.get_ok;
  E.insert eng s table (row 2 2) |> Result.get_ok;
  E.commit eng s |> Result.get_ok;
  let mgr = Option.get (Db.ssimgr db) in
  let ro = Db.begin_txn ~read_only:true db in
  checki "safe snapshot granted" 1 (Ssimgr.safe_snapshots mgr);
  ignore (E.read eng ro table ~pk:1);
  ignore (E.read eng ro table ~pk:2);
  checki "safe reads take no SIREAD locks" 0 (Ssimgr.siread_locks mgr);
  check "safe snapshot commits" true (E.commit eng ro = Ok ());
  (* with a writer in flight the snapshot is not safe: tracked instead *)
  let w = E.begin_txn eng in
  let ro2 = Db.begin_txn ~read_only:true db in
  checki "concurrent begin is not safe" 1 (Ssimgr.safe_snapshots mgr);
  ignore (E.read eng ro2 table ~pk:1);
  check "tracked read-only txn still commits" true (E.commit eng ro2 = Ok ());
  E.abort eng w

(* Property: racing conditional decrements over two counters preserve
   x + y >= 0 under the serializable levels, with zero checker cycles —
   and when the SI run of the same schedule breaks the invariant, the
   checker must have observed the cycle there. Crossed over engines and
   commit modes (the tracking must not care how commits are fsynced). *)
let qcheck_invariant key (mode_name, commit_mode) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s/%s: write-skew invariant under ssi+wsi" key mode_name)
    ~count:12
    QCheck.(list_of_size Gen.(int_range 2 16) (pair bool (int_range 1 40)))
    (fun ops ->
      let _, (module E : Engine.S) = Engine.resolve_exn key in
      let run isolation =
        let bus = Bus.create () in
        let db = Db.create ~bus ~commit_mode ~isolation () in
        let ck = Sichecker.attach bus in
        let eng = E.create db in
        let table = E.create_table eng ~name:"t" ~pk_col:0 () in
        let txn = E.begin_txn eng in
        E.insert eng txn table (row 1 60) |> Result.get_ok;
        E.insert eng txn table (row 2 60) |> Result.get_ok;
        E.commit eng txn |> Result.get_ok;
        (* fire decrement transactions pairwise-concurrently; each checks
           x + y - amount >= 0 against ITS snapshot, then decrements one *)
        let rec go = function
          | [] | [ _ ] -> ()
          | (w1, a1) :: (w2, a2) :: rest ->
              let t1 = E.begin_txn eng in
              let t2 = E.begin_txn eng in
              let attempt t (which, amount) =
                let v1 = Value.int (Option.get (E.read eng t table ~pk:1)).(1) in
                let v2 = Value.int (Option.get (E.read eng t table ~pk:2)).(1) in
                if v1 + v2 - amount >= 0 then
                  let pk = if which then 1 else 2 in
                  let cur = if which then v1 else v2 in
                  ignore
                    (E.update eng t table ~pk (fun r ->
                         let r = Array.copy r in
                         r.(1) <- Value.Int (cur - amount);
                         r))
              in
              attempt t1 (w1, a1);
              attempt t2 (w2, a2);
              ignore (E.commit eng t1);
              ignore (E.commit eng t2);
              go rest
        in
        go ops;
        let t = E.begin_txn eng in
        let v1 = Value.int (Option.get (E.read eng t table ~pk:1)).(1) in
        let v2 = Value.int (Option.get (E.read eng t table ~pk:2)).(1) in
        ignore (E.commit eng t);
        (v1 + v2, Sichecker.cycle_count ck, Sichecker.violation_count ck)
      in
      let si_sum, si_cycles, si_viol = run `Si in
      let ssi_sum, ssi_cycles, ssi_viol = run `Ssi in
      let wsi_sum, wsi_cycles, wsi_viol = run `Wsi in
      si_viol = 0 && ssi_viol = 0 && wsi_viol = 0
      && (si_sum >= 0 || si_cycles > 0)
      && ssi_sum >= 0 && ssi_cycles = 0
      && wsi_sum >= 0 && wsi_cycles = 0)

let commit_modes =
  [
    ("sync", Commitpipe.Sync);
    ("group", Commitpipe.Group { delay = 0.005 });
    ("async", Commitpipe.Async { interval = 0.01; max_bytes = 1 lsl 14 });
  ]

let suite =
  List.concat_map
    (fun key -> scenario_suite key "ssi" `Ssi @ scenario_suite key "wsi" `Wsi)
    engines
  @ List.map
      (fun key ->
        Alcotest.test_case (key ^ ": read-only anomaly at si/ssi/wsi") `Quick
          (test_read_only_anomaly key))
      engines
  @ List.map
      (fun key ->
        Alcotest.test_case (key ^ ": crash wipes SSI tracking") `Quick
          (test_crash_wipes_tracking key))
      engines
  @ List.map
      (fun key ->
        Alcotest.test_case (key ^ ": safe snapshot") `Quick
          (test_safe_snapshot key))
      engines
  @ List.concat_map
      (fun key ->
        List.map
          (fun mode -> QCheck_alcotest.to_alcotest (qcheck_invariant key mode))
          commit_modes)
      engines
