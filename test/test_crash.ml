(* Crash-point fuzzing: run a random committed workload, crash at a random
   operation boundary (drop the buffer cache, keeping only what was flushed
   plus the WAL), recover, and verify that exactly the committed state is
   visible. Runs over all three engines. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Bufpool = Sias_storage.Bufpool

let row k v = [| Value.Int k; Value.Int v |]

type op =
  | C_insert of int * int
  | C_update of int * int
  | C_delete of int
  | C_flush_all  (** checkpoint *)
  | C_flush_os  (** dirty-expire writeback *)
  | C_gc

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> C_insert (k, v)) (int_range 1 30) (int_bound 1000));
        (4, map2 (fun k v -> C_update (k, v)) (int_range 1 30) (int_bound 1000));
        (1, map (fun k -> C_delete k) (int_range 1 30));
        (1, return C_flush_all);
        (1, return C_flush_os);
        (1, return C_gc);
      ])

let pp_op = function
  | C_insert (k, v) -> Printf.sprintf "insert(%d,%d)" k v
  | C_update (k, v) -> Printf.sprintf "update(%d,%d)" k v
  | C_delete k -> Printf.sprintf "delete(%d)" k
  | C_flush_all -> "checkpoint"
  | C_flush_os -> "writeback"
  | C_gc -> "gc"

let arb_scenario =
  QCheck.make
    ~print:(fun (ops, crash_at) ->
      Printf.sprintf "crash@%d: %s" crash_at
        (String.concat "; " (List.map pp_op ops)))
    QCheck.Gen.(
      list_size (int_range 5 80) gen_op >>= fun ops ->
      int_bound (List.length ops) >>= fun crash_at -> return (ops, crash_at))

module Make (E : Engine.S) = struct
  (* Applies ops one committed transaction each, maintaining the expected
     model; crashes after [crash_at] ops; recovers; compares. *)
  let run (ops, crash_at) =
    let db = Db.create ~buffer_pages:256 () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let model = Hashtbl.create 32 in
    let apply i op =
      if i < crash_at then
        match op with
        | C_insert (k, v) ->
            let txn = E.begin_txn eng in
            (match E.insert eng txn table (row k v) with
            | Ok () ->
                E.commit eng txn |> Result.get_ok;
                Hashtbl.replace model k v
            | Error _ -> E.abort eng txn)
        | C_update (k, v) ->
            let txn = E.begin_txn eng in
            (match
               E.update eng txn table ~pk:k (fun r ->
                   let r = Array.copy r in
                   r.(1) <- Value.Int v;
                   r)
             with
            | Ok () ->
                E.commit eng txn |> Result.get_ok;
                Hashtbl.replace model k v
            | Error _ -> E.abort eng txn)
        | C_delete k ->
            let txn = E.begin_txn eng in
            (match E.delete eng txn table ~pk:k with
            | Ok () ->
                E.commit eng txn |> Result.get_ok;
                Hashtbl.remove model k
            | Error _ -> E.abort eng txn)
        | C_flush_all -> Bufpool.flush_all db.Db.pool ~sync:false
        | C_flush_os -> Bufpool.flush_os_cache db.Db.pool
        | C_gc -> E.gc eng
    in
    List.iteri apply ops;
    (* an in-flight transaction at crash time must be rolled back *)
    let in_flight = E.begin_txn eng in
    ignore (E.insert eng in_flight table (row 999 999));
    (* CRASH *)
    Bufpool.drop_cache db.Db.pool;
    E.recover eng;
    (* committed state must match the model exactly *)
    let txn = E.begin_txn eng in
    let ok = ref true in
    for k = 1 to 30 do
      let expect = Hashtbl.find_opt model k in
      let got =
        Option.map (fun r -> Value.int r.(1)) (E.read eng txn table ~pk:k)
      in
      if got <> expect then ok := false
    done;
    if E.read eng txn table ~pk:999 <> None then ok := false;
    let visible = E.scan eng txn table (fun _ -> ()) in
    E.commit eng txn |> Result.get_ok;
    !ok && visible = Hashtbl.length model

  let test name =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:(name ^ ": crash-point recovery fuzz") ~count:60 arb_scenario
         run)
end

module Si_crash = Make (Mvcc.Si_engine)
module Sias_crash = Make (Mvcc.Sias_engine)
module Vec_crash = Make (Mvcc.Sias_vector)

let suite =
  [
    Si_crash.test "SI";
    Sias_crash.test "SIAS-Chains";
    Vec_crash.test "SIAS-V";
  ]
