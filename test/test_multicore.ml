(* Multicore substrate tests: per-domain RNG streams, monotonic timing,
   NaN-safe percentiles, the lock-free CLOG, the sharded buffer pool,
   per-domain WAL insert slots, bus domain ownership, and the sharded
   TPC-C runner with the SI checker as oracle. *)

open Sias_util
module Bus = Sias_obs.Bus
module Txn = Sias_txn.Txn
module Bufpool = Sias_storage.Bufpool
module Page = Sias_storage.Page
module Wal = Sias_wal.Wal
module Walslots = Sias_wal.Walslots
module Device = Flashsim.Device
module W = Tpcc.Tpcc_workload
module MC = Tpcc.Tpcc_multicore
module S = Tpcc.Tpcc_schema

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* RNG streams *)

let test_stream_zero_is_create () =
  let a = Rng.create 42 and b = Rng.stream ~seed:42 ~stream:0 in
  for _ = 1 to 200 do
    checki "stream 0 = create" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_streams_differ () =
  let n = 16 in
  let streams = Array.init n (fun i -> Rng.stream ~seed:7 ~stream:i) in
  Rng.assert_independent streams;
  (* distinct fingerprints *)
  let fps =
    Array.to_list streams |> List.map Rng.fingerprint |> List.sort_uniq compare
  in
  checki "all fingerprints distinct" n (List.length fps);
  (* pairwise distinct output prefixes *)
  let prefixes =
    Array.map (fun s -> List.init 8 (fun _ -> Rng.int64 s)) streams
  in
  let uniq = Array.to_list prefixes |> List.sort_uniq compare in
  checki "all output prefixes distinct" n (List.length uniq)

let test_stream_determinism () =
  let a = Rng.stream ~seed:3 ~stream:5 and b = Rng.stream ~seed:3 ~stream:5 in
  for _ = 1 to 100 do
    checki "same (seed,stream) same output" (Rng.int a 9999) (Rng.int b 9999)
  done

let test_assert_independent_fails_loudly () =
  let dup = [| Rng.stream ~seed:1 ~stream:3; Rng.stream ~seed:1 ~stream:3 |] in
  match Rng.assert_independent dup with
  | () -> Alcotest.fail "duplicate streams must be rejected"
  | exception Failure msg ->
      check "names the colliding streams" true
        (String.length msg > 0
        && String.length (String.trim msg) > 20)

let test_streams_parallel_equal_sequential () =
  (* each domain draws from its own stream; results must equal the
     sequential draws from identically constructed streams *)
  let domains = 4 in
  let expected =
    Array.init domains (fun d ->
        let s = Rng.stream ~seed:99 ~stream:d in
        List.init 1000 (fun _ -> Rng.int64 s))
  in
  let got =
    Domainpool.run ~domains (fun d ->
        let s = Rng.stream ~seed:99 ~stream:d in
        List.init 1000 (fun _ -> Rng.int64 s))
  in
  for d = 0 to domains - 1 do
    check "parallel draws = sequential draws" true (expected.(d) = got.(d))
  done

(* ------------------------------------------------------------------ *)
(* Monotime (satellite: bench timing must be monotonic) *)

let test_monotime_monotone () =
  let prev = ref (Monotime.now ()) in
  for _ = 1 to 10_000 do
    let t = Monotime.now () in
    check "monotonic clock never goes backwards" true (t >= !prev);
    prev := t
  done;
  let t0 = Monotime.now () in
  check "elapsed_since non-negative" true (Monotime.elapsed_since t0 >= 0.0)

(* ------------------------------------------------------------------ *)
(* Stats.Sample percentiles: Float.compare, NaN-safe (satellite) *)

let reference_percentile xs p =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let qcheck_percentile_matches_reference =
  QCheck.Test.make ~name:"sample percentile matches Float.compare reference"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (float_range (-1e6) 1e6))
        (pair (float_range 0.0 100.0) small_nat))
    (fun (xs, (p, nan_every)) ->
      (* inject NaNs deterministically to exercise the total order *)
      let xs =
        List.mapi (fun i x -> if nan_every > 0 && i mod (nan_every + 2) = 0 then Float.nan else x) xs
      in
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      let got = Stats.Sample.percentile s p in
      let want = reference_percentile xs p in
      (* NaN-aware equality *)
      (Float.is_nan got && Float.is_nan want) || got = want)

let qcheck_percentile_nan_safe =
  QCheck.Test.make ~name:"percentile of NaN-free sample is never NaN" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 60) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      (not (Float.is_nan (Stats.Sample.percentile s 50.0)))
      && not (Float.is_nan (Stats.Sample.percentile s 99.0)))

(* ------------------------------------------------------------------ *)
(* CLOG: model equivalence, image format, lock-free readers *)

let qcheck_clog_matches_model =
  QCheck.Test.make ~name:"clog status matches model; image length follows legacy growth"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 80) (pair (int_range 1 5000) bool))
    (fun ops ->
      let mgr = Txn.create_mgr () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (xid, committed) ->
          Txn.mark_recovered mgr ~xid ~committed;
          Hashtbl.replace model xid committed)
        ops;
      let statuses_ok =
        Hashtbl.fold
          (fun xid committed acc ->
            acc
            && Txn.status mgr xid
               = (if committed then Txn.Committed else Txn.Aborted))
          model true
      in
      (* legacy growth law: start 256 bytes, grow to max (2*len) (byte+1) *)
      let expected_len =
        List.fold_left
          (fun len (xid, _) ->
            let byte = xid lsr 2 in
            if byte >= len then Stdlib.max (2 * len) (byte + 1) else len)
          256 ops
      in
      let _, image = Txn.clog_image mgr in
      let roundtrip_ok =
        let mgr2 = Txn.create_mgr () in
        Txn.clog_restore mgr2 ~next_xid:(Txn.last_xid mgr + 1) ~image;
        Hashtbl.fold
          (fun xid committed acc ->
            acc
            && Txn.status mgr2 xid
               = (if committed then Txn.Committed else Txn.Aborted))
          model true
      in
      statuses_ok && String.length image = expected_len && roundtrip_ok)

let test_clog_lockfree_readers () =
  (* One writer domain commits xids in ascending order; reader domains
     poll concurrently. Once a reader observes Committed for an xid, it
     must stay Committed (the log is monotone); readers must never crash
     or see a code outside the status type. *)
  let mgr = Txn.create_mgr () in
  let total = 20_000 in
  let highest_committed = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader () =
    let violations = ref 0 in
    let seen_committed = Hashtbl.create 256 in
    let iter = ref 0 in
    while not (Atomic.get stop) do
      let hi = Atomic.get highest_committed in
      if hi > 0 then begin
        (* revisit a spread of xids, including ones seen committed *)
        for k = 1 to 64 do
          incr iter;
          let xid = 1 + (Hashtbl.hash (hi, k, !iter) mod hi) in
          match Txn.status mgr xid with
          | Txn.Committed -> Hashtbl.replace seen_committed xid ()
          | Txn.In_progress | Txn.Aborted ->
              if Hashtbl.mem seen_committed xid then incr violations
        done
      end
    done;
    !violations
  in
  let readers = Array.init 2 (fun _ -> Domain.spawn reader) in
  for xid = 1 to total do
    Txn.mark_recovered mgr ~xid ~committed:true;
    Atomic.set highest_committed xid
  done;
  Atomic.set stop true;
  let violations = Array.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  checki "committed verdicts are stable under concurrent readers" 0 violations;
  (* final convergence *)
  check "all committed" true (Txn.is_committed mgr total && Txn.is_committed mgr 1)

(* ------------------------------------------------------------------ *)
(* Sharded buffer pool *)

let mk_pool ?(shards = 1) ?(capacity = 64) () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~name:(Printf.sprintf "t-ssd-%d" shards) () in
  Bufpool.create ~device ~clock ~capacity_pages:capacity ~page_size:1024 ~shards ()

let tag_bytes tag = Bytes.of_string (Printf.sprintf "tag-%06d" tag)

let fill_page page ~tag =
  let b = tag_bytes tag in
  if Page.live_count page = 0 then ignore (Page.insert page b)
  else ignore (Page.update page 0 b)

let read_tag page =
  match Page.read page 0 with Some b -> Bytes.to_string b | None -> ""

let test_sharded_pool_single_domain_equivalence () =
  (* same deterministic workload on 1-shard and 4-shard pools: final
     durable content and hit/miss totals must agree (working set fits,
     so no eviction-order divergence between shard layouts) *)
  let run_workload pool =
    for rel = 0 to 3 do
      for block = 0 to 19 do
        Bufpool.with_page pool ~rel ~block (fun page ->
            fill_page page ~tag:((rel * 100) + block));
        Bufpool.mark_dirty pool ~rel ~block
      done
    done;
    Bufpool.flush_all pool ~sync:false;
    (* revisit to generate hits *)
    for rel = 0 to 3 do
      for block = 0 to 19 do
        Bufpool.with_page pool ~rel ~block (fun page ->
            Alcotest.(check string)
              "content" (Printf.sprintf "tag-%06d" ((rel * 100) + block))
              (read_tag page))
      done
    done;
    Bufpool.stats pool
  in
  let s1 = run_workload (mk_pool ~shards:1 ~capacity:128 ()) in
  let s4 = run_workload (mk_pool ~shards:4 ~capacity:128 ()) in
  checki "same misses" s1.Bufpool.misses s4.Bufpool.misses;
  checki "same hits" s1.Bufpool.hits s4.Bufpool.hits;
  checki "same flushes" s1.Bufpool.flushes s4.Bufpool.flushes

let test_sharded_pool_shard_count_and_args () =
  let p = mk_pool ~shards:4 () in
  checki "shard_count" 4 (Bufpool.shard_count p);
  check "rejects zero shards" true
    (match mk_pool ~shards:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "rejects more shards than frames" true
    (match mk_pool ~shards:128 ~capacity:8 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sharded_pool_multidomain_reads () =
  (* preload pages, then hammer read-only from several domains: every
     read must see the exact image written; counters must add up *)
  let pool = mk_pool ~shards:8 ~capacity:128 () in
  let pages = 96 in
  for block = 0 to pages - 1 do
    Bufpool.with_page pool ~rel:0 ~block (fun page -> fill_page page ~tag:block);
    Bufpool.mark_dirty pool ~rel:0 ~block
  done;
  Bufpool.flush_all pool ~sync:false;
  let domains = 4 and rounds = 2_000 in
  let results =
    Domainpool.run ~domains (fun d ->
        let rng = Rng.stream ~seed:11 ~stream:d in
        let bad = ref 0 in
        for _ = 1 to rounds do
          let block = Rng.int rng pages in
          Bufpool.with_page pool ~rel:0 ~block (fun page ->
              if read_tag page <> Printf.sprintf "tag-%06d" block then incr bad)
        done;
        !bad)
  in
  checki "every domain read correct images" 0 (Array.fold_left ( + ) 0 results);
  let s = Bufpool.stats pool in
  check "counters account for every access" true
    (s.Bufpool.hits + s.Bufpool.misses >= (domains * rounds) + pages)

let test_sharded_pool_multidomain_disjoint_writes () =
  (* each domain writes its own relation; all content must survive *)
  let pool = mk_pool ~shards:8 ~capacity:256 () in
  let domains = 4 and blocks = 40 in
  let _ =
    Domainpool.run ~domains (fun d ->
        for block = 0 to blocks - 1 do
          Bufpool.with_page pool ~rel:d ~block (fun page ->
              fill_page page ~tag:((d * 1000) + block));
          Bufpool.mark_dirty pool ~rel:d ~block
        done;
        0)
  in
  Bufpool.flush_all pool ~sync:false;
  for d = 0 to domains - 1 do
    for block = 0 to blocks - 1 do
      Bufpool.with_page pool ~rel:d ~block (fun page ->
          Alcotest.(check string)
            "per-domain content intact"
            (Printf.sprintf "tag-%06d" ((d * 1000) + block))
            (read_tag page))
    done
  done

(* ------------------------------------------------------------------ *)
(* WAL insert slots *)

let test_walslots_inline_order_and_grouping () =
  let slots = Walslots.create ~slots:3 () in
  let payload i = Bytes.of_string (Printf.sprintf "p%04d" i) in
  for i = 0 to 29 do
    let slot = i mod 3 in
    let kind = if i mod 5 = 4 then Wal.Commit else Wal.Insert in
    ignore (Walslots.append slots ~slot ~xid:i ~rel:slot ~kind ~payload:(payload i))
  done;
  let drained = Walslots.flush_batch slots in
  checki "one inline batch drains everything" 30 drained;
  Walslots.stop slots;
  let st = Walslots.stats slots in
  checki "all records appended" 30 st.Walslots.appended;
  checki "commits counted" 6 st.Walslots.commits;
  check "batching saved fsyncs" true (st.Walslots.commit_fsyncs < st.Walslots.commits);
  (* per-slot order preserved in the log *)
  let recs = Wal.records_from (Walslots.wal slots) ~lsn:1 in
  let per_slot = Hashtbl.create 3 in
  List.iter
    (fun (r : Wal.record) ->
      let prev = try Hashtbl.find per_slot r.Wal.rel with Not_found -> -1 in
      check "slot order preserved" true (r.Wal.xid > prev);
      Hashtbl.replace per_slot r.Wal.rel r.Wal.xid)
    recs;
  checki "log carries every record" 30 (List.length recs)

let test_walslots_multidomain () =
  let producers = 4 and per = 500 in
  let slots = Walslots.create ~slots:producers () in
  Walslots.start slots;
  let _ =
    Domainpool.run ~domains:producers (fun d ->
        let last = ref None in
        for i = 0 to per - 1 do
          last :=
            Some
              (Walslots.append slots ~slot:d ~xid:((d * per) + i) ~rel:d
                 ~kind:Wal.Commit
                 ~payload:(Bytes.of_string (Printf.sprintf "%d:%d" d i)))
        done;
        (match !last with Some tk -> Walslots.wait_durable slots tk | None -> ());
        0)
  in
  Walslots.stop slots;
  let st = Walslots.stats slots in
  checki "all commits logged" (producers * per) st.Walslots.appended;
  check "flusher batched the stream" true
    (st.Walslots.commit_fsyncs < st.Walslots.commits);
  check "grouping saved fsyncs" true (st.Walslots.fsyncs_saved > 0);
  (* per-slot order in the shared log *)
  let recs = Wal.records_from (Walslots.wal slots) ~lsn:1 in
  checki "log carries every record" (producers * per) (List.length recs);
  let per_slot = Hashtbl.create 4 in
  List.iter
    (fun (r : Wal.record) ->
      let prev = try Hashtbl.find per_slot r.Wal.rel with Not_found -> -1 in
      check "per-slot order preserved in shared log" true (r.Wal.xid > prev);
      Hashtbl.replace per_slot r.Wal.rel r.Wal.xid)
    recs

(* ------------------------------------------------------------------ *)
(* Bus domain ownership *)

let test_bus_owner_assertion () =
  let bus = Bus.create () in
  Bus.subscribe bus (fun _ -> ());
  let failed =
    Domain.join
      (Domain.spawn (fun () ->
           match Bus.publish bus (Bus.Txn_commit { xid = 1 }) with
           | () -> false
           | exception Failure _ -> true))
  in
  check "cross-domain publish fails loudly" true failed;
  Bus.set_shared bus;
  let ok =
    Domain.join
      (Domain.spawn (fun () ->
           match Bus.publish bus (Bus.Txn_commit { xid = 2 }) with
           | () -> true
           | exception _ -> false))
  in
  check "set_shared lifts the check" true ok

(* ------------------------------------------------------------------ *)
(* Multicore TPC-C with the checker as oracle *)

let quick_mc ~engine ~domains ~seed =
  let base =
    {
      (W.default_config ~warehouses:1) with
      W.scale = S.scaled ~div:300 ();
      duration_s = 8.0;
      seed;
    }
  in
  {
    (MC.default_config ~engine ~domains ~warehouses_per_domain:1) with
    MC.base;
    buffer_pages = 512;
    check = true;
  }

let test_multicore_tpcc_smoke () =
  let r = MC.run (quick_mc ~engine:"sias-v" ~domains:2 ~seed:7) in
  checki "two shards" 2 (Array.length r.MC.shards);
  checki "checker clean" 0 r.MC.violations;
  check "work happened" true (r.MC.total_committed > 0);
  check "every shard committed work" true
    (Array.for_all (fun s -> s.MC.result.W.total_committed > 0) r.MC.shards);
  check "aggregate notpm sums shards" true
    (let sum =
       Array.fold_left (fun acc s -> acc +. s.MC.result.W.notpm) 0.0 r.MC.shards
     in
     abs_float (sum -. r.MC.agg_notpm) < 1e-6);
  check "commit stream flowed through the slots" true
    (r.MC.slots.Walslots.commits > 0);
  check "wall window is positive" true (r.MC.wall_s > 0.0)

let test_multicore_tpcc_deterministic_per_shard () =
  let a = MC.run (quick_mc ~engine:"si" ~domains:2 ~seed:21) in
  let b = MC.run (quick_mc ~engine:"si" ~domains:2 ~seed:21) in
  Array.iteri
    (fun i sa ->
      let sb = b.MC.shards.(i) in
      checki "same committed" sa.MC.result.W.total_committed
        sb.MC.result.W.total_committed;
      checki "same aborted" sa.MC.result.W.total_aborted
        sb.MC.result.W.total_aborted;
      Alcotest.(check (float 1e-9))
        "same notpm" sa.MC.result.W.notpm sb.MC.result.W.notpm)
    a.MC.shards;
  (* the two shards run distinct seed-derived streams, so their shard
     results should not be mirror images of each other *)
  check "shards run distinct workload streams" true
    (a.MC.shards.(0).MC.result.W.total_committed
     <> a.MC.shards.(1).MC.result.W.total_committed
    || a.MC.shards.(0).MC.result.W.notpm <> a.MC.shards.(1).MC.result.W.notpm)

let qcheck_multicore_torture =
  QCheck.Test.make ~name:"multicore tpcc: checker stays clean across configs"
    ~count:4
    QCheck.(pair (int_range 1 3) (int_range 0 1000))
    (fun (domains, seed) ->
      let engine = List.nth [ "si"; "sias"; "sias-v" ] (seed mod 3) in
      let cfg = quick_mc ~engine ~domains ~seed in
      let cfg = { cfg with MC.base = { cfg.MC.base with W.duration_s = 4.0 } } in
      let r = MC.run cfg in
      r.MC.violations = 0 && Array.length r.MC.shards = domains)

let suite =
  [
    Alcotest.test_case "rng: stream 0 equals create" `Quick test_stream_zero_is_create;
    Alcotest.test_case "rng: streams independent" `Quick test_streams_differ;
    Alcotest.test_case "rng: stream determinism" `Quick test_stream_determinism;
    Alcotest.test_case "rng: shared stream fails loudly" `Quick
      test_assert_independent_fails_loudly;
    Alcotest.test_case "rng: parallel draws deterministic" `Quick
      test_streams_parallel_equal_sequential;
    Alcotest.test_case "monotime: non-decreasing" `Quick test_monotime_monotone;
    QCheck_alcotest.to_alcotest qcheck_percentile_matches_reference;
    QCheck_alcotest.to_alcotest qcheck_percentile_nan_safe;
    QCheck_alcotest.to_alcotest qcheck_clog_matches_model;
    Alcotest.test_case "clog: lock-free readers see monotone log" `Quick
      test_clog_lockfree_readers;
    Alcotest.test_case "bufpool: shards=4 equals shards=1 single-domain" `Quick
      test_sharded_pool_single_domain_equivalence;
    Alcotest.test_case "bufpool: shard arg validation" `Quick
      test_sharded_pool_shard_count_and_args;
    Alcotest.test_case "bufpool: multi-domain reads" `Quick
      test_sharded_pool_multidomain_reads;
    Alcotest.test_case "bufpool: multi-domain disjoint writes" `Quick
      test_sharded_pool_multidomain_disjoint_writes;
    Alcotest.test_case "walslots: inline order + grouping" `Quick
      test_walslots_inline_order_and_grouping;
    Alcotest.test_case "walslots: multi-domain producers" `Quick
      test_walslots_multidomain;
    Alcotest.test_case "bus: owner-domain assertion" `Quick test_bus_owner_assertion;
    Alcotest.test_case "tpcc: 2-domain smoke, checker clean" `Slow
      test_multicore_tpcc_smoke;
    Alcotest.test_case "tpcc: per-shard determinism" `Slow
      test_multicore_tpcc_deterministic_per_shard;
    QCheck_alcotest.to_alcotest qcheck_multicore_torture;
  ]
