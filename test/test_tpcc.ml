(* TPC-C workload tests: loader integrity, per-transaction effects,
   driver accounting — run on both engines through the functor. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module W = Tpcc.Tpcc_workload
module S = Tpcc.Tpcc_schema
module Col = Tpcc.Tpcc_schema.Col
module Rng = Sias_util.Rng

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_nurand_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Tpcc.Tpcc_random.nurand rng ~a:1023 ~x:1 ~y:3000 in
    check "nurand in range" true (v >= 1 && v <= 3000)
  done

let test_nurand_nonuniform () =
  (* NURand concentrates mass: the most popular value should be far above
     the uniform expectation *)
  let rng = Rng.create 2 in
  let counts = Hashtbl.create 256 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Tpcc.Tpcc_random.nurand rng ~a:255 ~x:1 ~y:1000 in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) counts 0 in
  check "skewed" true (max_count > 2 * (n / 1000))

let test_last_name_syllables () =
  Alcotest.(check string) "0" "BARBARBAR" (Tpcc.Tpcc_random.last_name 0);
  Alcotest.(check string) "371" "PRICALLYOUGHT" (Tpcc.Tpcc_random.last_name 371);
  Alcotest.(check string) "999" "EINGEINGEING" (Tpcc.Tpcc_random.last_name 999)

let test_key_encoders_injective () =
  let seen = Hashtbl.create 1024 in
  for w = 1 to 3 do
    for d = 1 to 10 do
      for c = 1 to 30 do
        let k = S.customer_key ~w ~d ~c in
        check "unique customer key" false (Hashtbl.mem seen k);
        Hashtbl.replace seen k ()
      done
    done
  done;
  check "order vs order_line disjoint encodings" true
    (S.order_line_key ~okey:(S.order_key ~w:1 ~d:1 ~o:5) ~ol:3
    <> S.order_key ~w:1 ~d:1 ~o:5)

module Check (E : Mvcc.Engine.S) = struct
  module WE = W.Make (E)

  let small_cfg warehouses =
    {
      (W.default_config ~warehouses) with
      scale = S.scaled ~div:300 ();
      duration_s = 20.0;
      think_time_s = 0.2;
    }

  let fresh warehouses =
    let db = Db.create ~buffer_pages:2048 () in
    let eng = E.create db in
    let tables = WE.create_tables eng in
    let cfg = small_cfg warehouses in
    WE.load eng tables cfg;
    (eng, tables, cfg)

  let test_load_counts () =
    let eng, tables, cfg = fresh 2 in
    let s = cfg.W.scale in
    let txn = E.begin_txn eng in
    let count t = E.scan eng txn t (fun _ -> ()) in
    checki "warehouses" 2 (count tables.WE.warehouse);
    checki "districts" (2 * s.S.districts_per_warehouse) (count tables.WE.district);
    checki "customers"
      (2 * s.S.districts_per_warehouse * s.S.customers_per_district)
      (count tables.WE.customer);
    checki "items" s.S.items (count tables.WE.item);
    checki "stock" (2 * s.S.stock_per_warehouse) (count tables.WE.stock);
    checki "orders"
      (2 * s.S.districts_per_warehouse * s.S.initial_orders_per_district)
      (count tables.WE.orders);
    check "order lines 5..15 per order" true
      (let ol = count tables.WE.order_line in
       let o = count tables.WE.orders in
       ol >= 5 * o && ol <= 15 * o);
    E.commit eng txn |> Result.get_ok

  let test_new_order_effects () =
    let eng, tables, cfg = fresh 1 in
    let st = WE.make_session eng tables cfg in
    let rng = Rng.create 5 in
    let txn = E.begin_txn eng in
    let before =
      List.map
        (fun d ->
          let row =
            Option.get (E.read eng txn tables.WE.district ~pk:(S.district_key ~w:1 ~d))
          in
          (d, Value.int row.(Col.d_next_o_id)))
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    in
    E.commit eng txn |> Result.get_ok;
    (* run new-orders until one commits *)
    let committed = ref 0 in
    for _ = 1 to 20 do
      if WE.run_transaction st ~kind:W.New_order ~w:1 ~rng = W.Committed then incr committed
    done;
    check "some committed" true (!committed > 0);
    let txn = E.begin_txn eng in
    let bumped = ref 0 in
    List.iter
      (fun (d, prev) ->
        let row =
          Option.get (E.read eng txn tables.WE.district ~pk:(S.district_key ~w:1 ~d))
        in
        bumped := !bumped + (Value.int row.(Col.d_next_o_id) - prev))
      before;
    E.commit eng txn |> Result.get_ok;
    checki "next_o_id advanced once per committed new-order" !committed !bumped

  let test_payment_effects () =
    let eng, tables, cfg = fresh 1 in
    let st = WE.make_session eng tables cfg in
    let rng = Rng.create 6 in
    let read_wytd () =
      let txn = E.begin_txn eng in
      let row = Option.get (E.read eng txn tables.WE.warehouse ~pk:1) in
      E.commit eng txn |> Result.get_ok;
      Value.float row.(Col.w_ytd)
    in
    let before = read_wytd () in
    let committed = ref 0 in
    for _ = 1 to 10 do
      if WE.run_transaction st ~kind:W.Payment ~w:1 ~rng = W.Committed then incr committed
    done;
    check "payments committed" true (!committed > 0);
    check "warehouse ytd grew" true (read_wytd () > before)

  let test_delivery_consumes_new_orders () =
    let eng, tables, cfg = fresh 1 in
    let st = WE.make_session eng tables cfg in
    let rng = Rng.create 7 in
    let count_new_orders () =
      let txn = E.begin_txn eng in
      let n = E.scan eng txn tables.WE.new_order (fun _ -> ()) in
      E.commit eng txn |> Result.get_ok;
      n
    in
    let before = count_new_orders () in
    check "loader left pending orders" true (before > 0);
    let out = WE.run_transaction st ~kind:W.Delivery ~w:1 ~rng in
    check "delivery committed" true (out = W.Committed);
    let after = count_new_orders () in
    check "new_order rows consumed" true (after < before)

  let test_driver_run_accounting () =
    let eng, tables, cfg = fresh 1 in
    let r = WE.run eng tables cfg in
    check "ran to deadline" true (r.W.elapsed_s >= cfg.W.duration_s *. 0.9);
    check "committed transactions" true (r.W.total_committed > 0);
    let no = List.assoc W.New_order r.W.per_kind in
    check "new orders ran" true (no.W.committed > 0);
    check "notpm consistent" true
      (abs_float (r.W.notpm -. (float_of_int no.W.committed *. 60.0 /. r.W.elapsed_s)) < 1.0);
    (* response samples recorded for committed txns *)
    check "responses recorded" true (Sias_util.Stats.Sample.count no.W.resp = no.W.committed)

  let suite name =
    [
      Alcotest.test_case (name ^ ": load counts") `Quick test_load_counts;
      Alcotest.test_case (name ^ ": new-order effects") `Quick test_new_order_effects;
      Alcotest.test_case (name ^ ": payment effects") `Quick test_payment_effects;
      Alcotest.test_case (name ^ ": delivery consumes queue") `Quick
        test_delivery_consumes_new_orders;
      Alcotest.test_case (name ^ ": driver accounting") `Quick test_driver_run_accounting;
    ]
end

module Check_si = Check (Mvcc.Si_engine)
module Check_sias = Check (Mvcc.Sias_engine)
module Check_sias_v = Check (Mvcc.Sias_vector)

let suite =
  [
    Alcotest.test_case "nurand bounds" `Quick test_nurand_bounds;
    Alcotest.test_case "nurand non-uniform" `Quick test_nurand_nonuniform;
    Alcotest.test_case "last name syllables" `Quick test_last_name_syllables;
    Alcotest.test_case "key encoders injective" `Quick test_key_encoders_injective;
  ]
  @ Check_si.suite "SI"
  @ Check_sias.suite "SIAS"
  @ Check_sias_v.suite "SIAS-V"
