(* Replication/failover torture: run a random committed workload on a
   primary with WAL shipping to a hot standby over a seeded lossy link
   (drops, delay, reordering, partitions), interleaving standby snapshot
   reads checked by the SI oracle, then crash the primary and promote the
   standby. The promoted standby must be byte-identical to a recovered
   primary at its replay horizon — the full committed state when
   remote-flush ran undegraded, a committed prefix otherwise — or fail
   loudly with a typed error. Runs over all four engines in both
   replication modes. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Txn = Sias_txn.Txn
module Bufpool = Sias_storage.Bufpool
module Wal = Sias_wal.Wal
module Simclock = Sias_util.Simclock
module Link = Sias_repl.Link
module Repl = Sias_repl.Repl

let row k v = [| Value.Int k; Value.Int v |]
let keys = 30

type op =
  | R_insert of int * int
  | R_update of int * int
  | R_delete of int
  | R_tick of float  (** advance simulated time, run the tickers *)
  | R_partition of bool
  | R_read_standby of int  (** refresh, then snapshot-read a key *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> R_insert (k, v)) (int_range 1 keys) (int_bound 1000));
        (4, map2 (fun k v -> R_update (k, v)) (int_range 1 keys) (int_bound 1000));
        (2, map (fun k -> R_delete k) (int_range 1 keys));
        (4, map (fun ms -> R_tick (0.01 *. float_of_int ms)) (int_range 1 20));
        (1, return (R_partition true));
        (1, return (R_partition false));
        (2, map (fun k -> R_read_standby k) (int_range 1 keys));
      ])

let pp_op = function
  | R_insert (k, v) -> Printf.sprintf "insert(%d,%d)" k v
  | R_update (k, v) -> Printf.sprintf "update(%d,%d)" k v
  | R_delete k -> Printf.sprintf "delete(%d)" k
  | R_tick dt -> Printf.sprintf "tick(%.2f)" dt
  | R_partition b -> if b then "partition" else "heal"
  | R_read_standby k -> Printf.sprintf "standby-read(%d)" k

type scenario = { ops : op list; link_seed : int; profile : Link.profile }

let arb_scenario =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "link(seed=%d,%s): %s" s.link_seed
        (Link.profile_name s.profile)
        (String.concat "; " (List.map pp_op s.ops)))
    QCheck.Gen.(
      list_size (int_range 5 40) gen_op >>= fun ops ->
      int_bound 10_000 >>= fun link_seed ->
      frequency
        [
          (1, return Link.clean);
          (2, return Link.wan);
          (3, return Link.lossy);
          (2, return Link.chaos);
        ]
      >>= fun profile -> return { ops; link_seed; profile })

module Make (E : Engine.S) = struct
  (* Full visible state of the single test table: rows by key plus the
     visible-scan count — the byte-exact comparison basis. *)
  let dump eng table =
    let txn = E.begin_txn eng in
    let rows =
      List.filter_map
        (fun k ->
          Option.map
            (fun r -> (k, Array.to_list r))
            (E.read eng txn table ~pk:k))
        (List.init keys (fun i -> i + 1))
    in
    let visible = E.scan eng txn table (fun _ -> ()) in
    E.commit eng txn |> Result.get_ok;
    (rows, visible)

  let run mode s =
    let db = Db.create () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let sdb = Db.create () in
    let seng = E.create sdb in
    let stable = E.create_table seng ~name:"t" ~pk_col:0 () in
    let link = Link.create ~profile:s.profile ~seed:s.link_seed () in
    let repl =
      Repl.attach ~primary:db ~standby:sdb ~link ~mode ~retransmit_timeout:0.05
        ~max_sync_retries:4 ~check:true ()
    in
    Repl.set_refresh repl (fun () ->
        Bufpool.drop_cache sdb.Db.pool;
        E.recover seng);
    let model = Hashtbl.create 32 in
    (* model snapshot after each committed txn, keyed by xid: the oracle
       for a standby whose replay horizon stopped at that commit *)
    let commits = ref [] in
    let last_commit_lsn = ref 0 in
    let committed xid =
      commits := (xid, Hashtbl.copy model) :: !commits;
      last_commit_lsn := Wal.flushed_lsn db.Db.wal
    in
    let apply = function
      | R_insert (k, v) -> (
          let txn = E.begin_txn eng in
          match E.insert eng txn table (row k v) with
          | Ok () ->
              E.commit eng txn |> Result.get_ok;
              Hashtbl.replace model k v;
              committed txn.Txn.xid
          | Error _ -> E.abort eng txn)
      | R_update (k, v) -> (
          let txn = E.begin_txn eng in
          match
            E.update eng txn table ~pk:k (fun r ->
                let r = Array.copy r in
                r.(1) <- Value.Int v;
                r)
          with
          | Ok () ->
              E.commit eng txn |> Result.get_ok;
              Hashtbl.replace model k v;
              committed txn.Txn.xid
          | Error _ -> E.abort eng txn)
      | R_delete k -> (
          let txn = E.begin_txn eng in
          match E.delete eng txn table ~pk:k with
          | Ok () ->
              E.commit eng txn |> Result.get_ok;
              Hashtbl.remove model k;
              committed txn.Txn.xid
          | Error _ -> E.abort eng txn)
      | R_tick dt ->
          Simclock.advance db.Db.clock dt;
          Db.tick db
      | R_partition b -> Repl.partition repl b
      | R_read_standby k ->
          Repl.refresh repl;
          let txn = E.begin_txn seng in
          ignore (E.read seng txn stable ~pk:k);
          E.commit seng txn |> Result.get_ok
    in
    try
      List.iter apply s.ops;
      (* an in-flight primary transaction at crash time *)
      let in_flight = E.begin_txn eng in
      ignore (E.insert eng in_flight table (row 999 999));
      let st = Repl.stats repl in
      (* lag accounting must reconcile with what was actually shipped *)
      let accounting_ok =
        st.Repl.installed_records = st.Repl.installed_lsn
        && st.Repl.shipped_records >= st.Repl.installed_records
        && st.Repl.acked_lsn <= st.Repl.installed_lsn
        && st.Repl.lag_records
           = max 0 (Wal.flushed_lsn db.Db.wal - st.Repl.installed_lsn)
      in
      (* CRASH the primary; recover it as the comparison baseline *)
      Db.crash db;
      E.recover eng;
      let primary_dump = dump eng table in
      (* FAILOVER *)
      let clean_remote =
        mode = Repl.Remote_flush && st.Repl.degraded_acks = 0
      in
      if clean_remote then
        (* every commit was acknowledged by the standby: promotion must
           not lag and must reproduce the full committed state *)
        Repl.promote ~expect_flushed_lsn:!last_commit_lsn repl
      else Repl.promote repl;
      let standby_dump = dump seng stable in
      let horizon = Repl.commit_horizon repl in
      let expected =
        if clean_remote then primary_dump
        else begin
          (* the standby is a committed prefix: reconstruct the model at
             its replay horizon *)
          let m =
            if horizon = 0 then Hashtbl.create 1 else List.assoc horizon !commits
          in
          ( List.filter_map
              (fun k ->
                Option.map (fun v -> (k, [ Value.Int k; Value.Int v ]))
                  (Hashtbl.find_opt m k))
              (List.init keys (fun i -> i + 1)),
            Hashtbl.length m )
        end
      in
      let checker_ok =
        match Repl.checker repl with
        | Some ck -> Mvcc.Sichecker.violation_count ck = 0
        | None -> true
      in
      (* the promoted standby keeps serving: writes must succeed *)
      let txn = E.begin_txn seng in
      let write_ok =
        match E.insert seng txn stable (row 999 777) with
        | Ok () ->
            E.commit seng txn |> Result.get_ok;
            let txn2 = E.begin_txn seng in
            let got = E.read seng txn2 stable ~pk:999 in
            E.commit seng txn2 |> Result.get_ok;
            got = Some (row 999 777)
        | Error _ ->
            E.abort seng txn;
            false
      in
      accounting_ok && standby_dump = expected && checker_ok && write_ok
    with
    | Repl.Lagging _ ->
        (* promote is only asked for zero data loss after an undegraded
           remote-flush run, where the standby provably has everything —
           a Lagging raise there is a real bug *)
        false
    | Bufpool.Corrupt_page _ | Wal.Corrupt_wal _ ->
        (* unrepairable damage detected and reported loudly — acceptable;
           only silent divergence fails *)
        true

  let test name mode =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           (Printf.sprintf "%s/%s: replication failover torture" name
              (Repl.mode_name mode))
         ~count:160 arb_scenario (run mode))
end

module Si_repl = Make (Mvcc.Si_engine)
module Sicv_repl = Make (Mvcc.Si_cv_engine)
module Sias_repl_t = Make (Mvcc.Sias_engine)
module Vec_repl = Make (Mvcc.Sias_vector)

let suite =
  [
    Si_repl.test "SI" Repl.Ship_async;
    Si_repl.test "SI" Repl.Remote_flush;
    Sicv_repl.test "SI-CV" Repl.Ship_async;
    Sicv_repl.test "SI-CV" Repl.Remote_flush;
    Sias_repl_t.test "SIAS-Chains" Repl.Ship_async;
    Sias_repl_t.test "SIAS-Chains" Repl.Remote_flush;
    Vec_repl.test "SIAS-V" Repl.Ship_async;
    Vec_repl.test "SIAS-V" Repl.Remote_flush;
  ]
