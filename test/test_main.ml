(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "sias"
    [
      ("util", Test_util.suite);
      ("flashsim", Test_flashsim.suite);
      ("noftl", Test_noftl.suite);
      ("storage", Test_storage.suite);
      ("wal", Test_wal.suite);
      ("commitpipe", Test_commitpipe.suite);
      ("txn", Test_txn.suite);
      ("contention", Test_contention.suite);
      ("vidmap", Test_vidmap.suite);
      ("index", Test_index.suite);
      ("paged-index", Test_paged_index.suite);
      ("mvcc-parts", Test_mvcc_parts.suite);
      ("engine-si", Test_engines.Si_suite.suite);
      ("engine-sias", Test_engines.Sias_suite.suite);
      ("engine-sias-v", Test_engines.Sias_v_suite.suite);
      ("engine-si-cv", Test_engines.Si_cv_suite.suite);
      ("sias-whitebox", Test_sias.suite);
      ("si-vs-sias", Test_equiv.suite);
      ("tpcc", Test_tpcc.suite);
      ("integration", Test_extra.suite);
      ("tpcc-consistency", Test_tpcc_consistency.suite);
      ("hint-bits", Test_hintbits.suite);
      ("crash-fuzz", Test_crash.suite);
      ("fault-torture", Test_faults.suite);
      ("wal-retention", Test_walretention.suite);
      ("repl-failover", Test_repl.suite);
      ("ssi", Test_ssi.suite);
      ("obs", Test_obs.suite);
      ("chaos", Test_chaos.suite);
      ("multicore", Test_multicore.suite);
    ]
