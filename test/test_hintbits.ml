(* The hint-bit fast path and the hot-path data structures.

   Three properties:
   - the GC horizon maintained incrementally by the transaction manager
     always equals a fold over the active snapshots (the oracle the old
     implementation computed on every call);
   - visibility through the hint-bit fast path (what every engine read,
     lookup and scan now uses) agrees with the retained slow-path
     predicate on randomized transactional histories, for all four
     engines, including under async commit where the durability gate
     delays hint writes;
   - a crash can never leave a durable committed hint for a transaction
     whose commit record was lost with the unflushed WAL. *)

module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Value = Mvcc.Value
module Tuple = Mvcc.Tuple
module Visibility = Mvcc.Visibility
module Txn = Sias_txn.Txn
module Snapshot = Sias_txn.Snapshot
module Heapfile = Sias_storage.Heapfile
module Bufpool = Sias_storage.Bufpool
module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- horizon: incremental min vs fold-based oracle ---- *)

let qcheck_horizon =
  QCheck.Test.make ~name:"horizon equals fold over active snapshots" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 80) (int_bound 3))
    (fun ops ->
      let mgr = Txn.create_mgr () in
      let active = ref [] in
      let oracle () =
        (* what the old implementation computed on every call *)
        match !active with
        | [] -> Txn.last_xid mgr + 1
        | ts ->
            List.fold_left
              (fun acc t -> Stdlib.min acc (Snapshot.xmin t.Txn.snapshot))
              max_int ts
      in
      List.iter
        (fun op ->
          (match (op, !active) with
          | 0, _ | _, [] -> active := Txn.begin_txn mgr :: !active
          | 1, t :: rest ->
              Txn.commit mgr t;
              active := rest
          | _, t :: rest ->
              (* finish a random non-head transaction too: exercises
                 multiset removal away from the minimum *)
              let t, rest =
                if op = 3 && rest <> [] then (List.hd rest, t :: List.tl rest)
                else (t, rest)
              in
              Txn.abort mgr t;
              active := rest);
          if Txn.horizon mgr <> oracle () then
            QCheck.Test.fail_reportf "horizon %d <> oracle %d (actives %d)"
              (Txn.horizon mgr) (oracle ()) (List.length !active))
        ops;
      true)

(* ---- fast path vs slow oracle on random histories, per engine ----

   The engines answer reads through the hint-bit fast path; the model
   below answers them with the retained slow predicate ([Txn.visible] on
   the same transaction manager) over its own version history. Any hint
   bit that caches a wrong or premature answer makes the two diverge. *)

type hstep =
  | Begin of int
  | Commit of int
  | Abort of int
  | Write of int * int * int option (* slot, key, Some v = upsert, None = delete *)
  | Read of int * int
  | ScanAll of int
  | Tick

let pp_hstep = function
  | Begin s -> Printf.sprintf "Begin %d" s
  | Commit s -> Printf.sprintf "Commit %d" s
  | Abort s -> Printf.sprintf "Abort %d" s
  | Write (s, k, Some v) -> Printf.sprintf "Write (%d,%d,%d)" s k v
  | Write (s, k, None) -> Printf.sprintf "Delete (%d,%d)" s k
  | Read (s, k) -> Printf.sprintf "Read (%d,%d)" s k
  | ScanAll s -> Printf.sprintf "Scan %d" s
  | Tick -> "Tick"

let gen_hstep =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun s -> Begin s) (int_bound 3));
        (3, map (fun s -> Commit s) (int_bound 3));
        (2, map (fun s -> Abort s) (int_bound 3));
        ( 4,
          map3
            (fun s k v -> Write (s, k, Some v))
            (int_bound 3) (int_range 1 10) (int_bound 100) );
        (1, map2 (fun s k -> Write (s, k, None)) (int_bound 3) (int_range 1 10));
        (5, map2 (fun s k -> Read (s, k)) (int_bound 3) (int_range 1 10));
        (2, map (fun s -> ScanAll s) (int_bound 3));
        (1, return Tick);
      ])

let arb_history =
  QCheck.make
    ~print:(fun (steps, async) ->
      Printf.sprintf "async=%b: %s" async
        (String.concat "; " (List.map pp_hstep steps)))
    QCheck.Gen.(
      pair (list_size (int_range 10 120) gen_hstep) (map (fun b -> b) bool))

module Equiv (E : Engine.S) = struct
  type mver = { creator : int; mval : int option }

  let run (steps, async) =
    let commit_mode =
      if async then Commitpipe.Async { interval = 0.05; max_bytes = 1 lsl 16 }
      else Commitpipe.Sync
    in
    let db = Db.create ~buffer_pages:512 ~commit_mode () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let mgr = db.Db.txnmgr in
    (* model: per key, version list newest-first *)
    let model : (int, mver list) Hashtbl.t = Hashtbl.create 16 in
    let push k creator mval =
      Hashtbl.replace model k ({ creator; mval } :: Option.value ~default:[] (Hashtbl.find_opt model k))
    in
    (* the slow-path oracle: first version whose creator is visible *)
    let oracle snap k =
      let rec first = function
        | [] -> None
        | v :: rest ->
            if Txn.visible mgr snap v.creator then v.mval else first rest
      in
      first (Option.value ~default:[] (Hashtbl.find_opt model k))
    in
    let slots = Array.make 4 None in
    let row k v = [| Value.Int k; Value.Int v |] in
    let check_read txn k =
      let got =
        match E.read eng txn table ~pk:k with
        | Some r -> Some (Value.int r.(1))
        | None -> None
      in
      let want = oracle txn.Txn.snapshot k in
      if got <> want then
        QCheck.Test.fail_reportf "read %d: fast path %s, slow oracle %s" k
          (match got with Some v -> string_of_int v | None -> "none")
          (match want with Some v -> string_of_int v | None -> "none")
    in
    List.iter
      (fun step ->
        match step with
        | Begin s -> if slots.(s) = None then slots.(s) <- Some (E.begin_txn eng)
        | Commit s -> (
            match slots.(s) with
            | Some txn ->
                E.commit eng txn |> Result.get_ok;
                slots.(s) <- None
            | None -> ())
        | Abort s -> (
            match slots.(s) with
            | Some txn ->
                E.abort eng txn;
                slots.(s) <- None
            | None -> ())
        | Write (s, k, Some v) -> (
            match slots.(s) with
            | None -> ()
            | Some txn -> (
                (* mirror the engine's accept/reject decision; only the
                   read results are compared against the oracle *)
                match E.read eng txn table ~pk:k with
                | Some _ ->
                    if
                      E.update eng txn table ~pk:k (fun r ->
                          let r = Array.copy r in
                          r.(1) <- Value.Int v;
                          r)
                      = Ok ()
                    then push k txn.Txn.xid (Some v)
                | None ->
                    if E.insert eng txn table (row k v) = Ok () then
                      push k txn.Txn.xid (Some v)))
        | Write (s, k, None) -> (
            match slots.(s) with
            | None -> ()
            | Some txn ->
                if E.delete eng txn table ~pk:k = Ok () then
                  push k txn.Txn.xid None)
        | Read (s, k) -> (
            match slots.(s) with
            | Some txn ->
                check_read txn k;
                (* immediately reread: the first check may have cached a
                   hint, the second must answer identically through it *)
                check_read txn k
            | None -> ())
        | ScanAll s -> (
            match slots.(s) with
            | None -> ()
            | Some txn ->
                let got = E.scan eng txn table (fun _ -> ()) in
                let want = ref 0 in
                Hashtbl.iter
                  (fun k _ ->
                    if oracle txn.Txn.snapshot k <> None then incr want)
                  model;
                if got <> !want then
                  QCheck.Test.fail_reportf "scan: fast path %d rows, oracle %d"
                    got !want)
        | Tick -> Db.tick db)
      steps;
    Array.iter (function Some txn -> E.abort eng txn | None -> ()) slots;
    (* final pass with a fresh snapshot: every surviving hint must still
       agree with the slow predicate *)
    let txn = E.begin_txn eng in
    for k = 1 to 10 do
      check_read txn k
    done;
    E.commit eng txn |> Result.get_ok;
    true

  let test name =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:(name ^ ": hint fast path = slow oracle")
         ~count:220 arb_history run)
end

module Si_equiv = Equiv (Mvcc.Si_engine)
module Si_cv_equiv = Equiv (Mvcc.Si_cv_engine)
module Sias_equiv = Equiv (Mvcc.Sias_engine)
module Sias_v_equiv = Equiv (Mvcc.Sias_vector)

(* ---- durability gate: no committed hint before the commit record is
   flushed, and none survives a crash that loses the record ---- *)

let test_hint_durability_gate () =
  (* async commit with thresholds the test never crosses: the commit
     record stays in the WAL buffer until an explicit flush *)
  let db =
    Db.create ~commit_mode:(Commitpipe.Async { interval = 1e9; max_bytes = max_int }) ()
  in
  let heap = Heapfile.create db.Db.pool ~rel:(Db.alloc_rel db) ~placement:Heapfile.Free_space_first in
  let t1 = Db.begin_txn db in
  let tid = Heapfile.insert heap (Tuple.Si.encode ~xmin:t1.Txn.xid ~row:[| Value.Int 1 |]) in
  Db.commit db t1;
  let hint_of () =
    (Tuple.Si.header (Option.get (Heapfile.read heap tid))).Tuple.Si.xmin_hint
  in
  let t2 = Db.begin_txn db in
  let h = Tuple.Si.header (Option.get (Heapfile.read heap tid)) in
  check "committed version visible" true
    (Visibility.si_visible_fast db ~heap ~tid t2.Txn.snapshot h);
  checki "hint withheld while commit record unflushed" Tuple.Hint.none (hint_of ());
  (* flush the WAL: the same check may now cache the hint *)
  Wal.flush db.Db.wal ~sync:true;
  check "still visible" true (Visibility.si_visible_fast db ~heap ~tid t2.Txn.snapshot h);
  checki "hint cached once durable" Tuple.Hint.committed (hint_of ());
  Db.commit db t2

let test_no_committed_hint_survives_crash () =
  let db =
    Db.create ~commit_mode:(Commitpipe.Async { interval = 1e9; max_bytes = max_int }) ()
  in
  let rel = Db.alloc_rel db in
  let heap = Heapfile.create db.Db.pool ~rel ~placement:Heapfile.Free_space_first in
  let t1 = Db.begin_txn db in
  let tid = Heapfile.insert heap (Tuple.Si.encode ~xmin:t1.Txn.xid ~row:[| Value.Int 1 |]) in
  let xid = t1.Txn.xid in
  Db.commit db t1;
  (* a reader probes visibility while the commit record is still only in
     the WAL buffer — the durability gate must withhold the hint *)
  let t2 = Db.begin_txn db in
  let h = Tuple.Si.header (Option.get (Heapfile.read heap tid)) in
  ignore (Visibility.si_visible_fast db ~heap ~tid t2.Txn.snapshot h);
  (* data pages reach the device; the WAL buffer (and with it the commit
     record) is then lost in the crash *)
  let nblocks = Heapfile.nblocks heap in
  Bufpool.flush_all db.Db.pool ~sync:true;
  Db.crash db;
  (* after the crash nothing remembers xid as committed; a durable
     committed hint would resurrect the lost transaction *)
  let heap' = Heapfile.restore db.Db.pool ~rel ~placement:Heapfile.Free_space_first ~nblocks in
  match Heapfile.read heap' tid with
  | None -> ()
  | Some item ->
      let h' = Tuple.Si.header item in
      checki "creator is the lost transaction" xid h'.Tuple.Si.xmin;
      check "no committed hint for the lost transaction" true
        (h'.Tuple.Si.xmin_hint <> Tuple.Hint.committed)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_horizon;
    Si_equiv.test "SI";
    Si_cv_equiv.test "SI-CV";
    Sias_equiv.test "SIAS";
    Sias_v_equiv.test "SIAS-V";
    Alcotest.test_case "hint withheld until commit record durable" `Quick
      test_hint_durability_gate;
    Alcotest.test_case "crash cannot persist a committed hint for a lost txn" `Quick
      test_no_committed_hint_survives_crash;
  ]
