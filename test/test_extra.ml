(* Additional integration and failure-injection tests: GC/recovery
   interaction, WAL checkpoint truncation, SIAS-V vector spilling, driver
   determinism, and the experiment harness across device kinds. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Bufpool = Sias_storage.Bufpool
module Heapfile = Sias_storage.Heapfile
module Wal = Sias_wal.Wal
module W = Tpcc.Tpcc_workload

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let row k v = [| Value.Int k; Value.Int v; Value.Str (String.make 40 'x') |]

let set_v v r =
  let r = Array.copy r in
  r.(1) <- Value.Int v;
  r

(* ---------- GC + crash recovery, for each SIAS engine ---------- *)

module Gc_recovery (E : Engine.S) = struct
  let test () =
    let db = Db.create ~buffer_pages:512 () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let commit f =
      let txn = E.begin_txn eng in
      f txn;
      E.commit eng txn |> Result.get_ok
    in
    commit (fun txn ->
        for k = 1 to 200 do
          E.insert eng txn table (row k 0) |> Result.get_ok
        done);
    (* churn so early pages decay, then seal everything and GC *)
    for i = 1 to 4 do
      commit (fun txn ->
          for k = 1 to 200 do
            E.update eng txn table ~pk:k (set_v i) |> Result.get_ok
          done)
    done;
    Bufpool.flush_all db.Db.pool ~sync:false;
    E.gc eng;
    check "trim happened" true (Bufpool.trims db.Db.pool > 0);
    (* more committed work AFTER the GC, then crash *)
    commit (fun txn ->
        for k = 1 to 50 do
          E.update eng txn table ~pk:k (set_v 99) |> Result.get_ok
        done);
    Bufpool.drop_cache db.Db.pool;
    E.recover eng;
    let txn = E.begin_txn eng in
    let n =
      E.scan eng txn table (fun r ->
          let k = Value.int r.(0) and v = Value.int r.(1) in
          let expect = if k <= 50 then 99 else 4 in
          checki (Printf.sprintf "row %d value" k) expect v)
    in
    E.commit eng txn |> Result.get_ok;
    checki "all rows survive gc + crash" 200 n
end

module Gc_rec_chains = Gc_recovery (Mvcc.Sias_engine)
module Gc_rec_vectors = Gc_recovery (Mvcc.Sias_vector)

(* ---------- recovery from a WAL truncated at a checkpoint ---------- *)

let test_recovery_after_checkpoint_truncation () =
  let module E = Mvcc.Si_engine in
  let db = Db.create ~buffer_pages:512 () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let txn = E.begin_txn eng in
  for k = 1 to 40 do
    E.insert eng txn table (row k k) |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  (* checkpoint: everything on disk; WAL before this point is recyclable
     except commit records (our clog replay needs them, like pg_xact) *)
  Bufpool.flush_all db.Db.pool ~sync:false;
  let checkpoint_lsn = Wal.current_lsn db.Db.wal in
  let txn = E.begin_txn eng in
  for k = 41 to 60 do
    E.insert eng txn table (row k k) |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  (* drop heap records below the checkpoint, keep commit/abort records *)
  let keep =
    List.filter
      (fun (r : Wal.record) ->
        r.lsn > checkpoint_lsn || r.kind = Wal.Commit || r.kind = Wal.Abort)
      (Wal.records_from db.Db.wal ~lsn:0)
  in
  Wal.truncate_before db.Db.wal ~lsn:(checkpoint_lsn + 1);
  List.iter
    (fun (r : Wal.record) ->
      if r.lsn <= checkpoint_lsn && (r.kind = Wal.Commit || r.kind = Wal.Abort) then ())
    keep;
  Bufpool.drop_cache db.Db.pool;
  E.recover eng;
  let txn = E.begin_txn eng in
  let n = E.scan eng txn table (fun _ -> ()) in
  E.commit eng txn |> Result.get_ok;
  checki "pre-checkpoint rows from disk + post-checkpoint from WAL" 60 n

(* ---------- SIAS-V vector spilling ---------- *)

let test_vector_spill_overflow () =
  let module E = Mvcc.Sias_vector in
  let db = Db.create () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let commit f =
    let txn = E.begin_txn eng in
    f txn;
    E.commit eng txn |> Result.get_ok
  in
  commit (fun txn -> E.insert eng txn table (row 1 0) |> Result.get_ok);
  (* hold a snapshot so nothing is collectible, then overflow the vector *)
  let old_reader = E.begin_txn eng in
  let n_updates = (3 * E.vector_capacity) + 1 in
  for i = 1 to n_updates do
    commit (fun txn -> E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok)
  done;
  (* the old snapshot still reads its epoch's version across the spill *)
  (match E.read eng old_reader table ~pk:1 with
  | Some r -> checki "old snapshot reads initial version" 0 (Value.int r.(1))
  | None -> Alcotest.fail "old version lost in spill");
  E.commit eng old_reader |> Result.get_ok;
  let stats = E.table_stats eng table in
  checki "all versions reachable across overflow chain" (n_updates + 1)
    stats.Engine.total_versions;
  (* new snapshots read the newest *)
  commit (fun txn ->
      match E.read eng txn table ~pk:1 with
      | Some r -> checki "newest" n_updates (Value.int r.(1))
      | None -> Alcotest.fail "row lost")

let test_vector_read_cost_beats_chain () =
  (* after k updates, resolving an OLD snapshot needs ~k fetches on chains
     but only ~k/capacity on vectors: the co-location payoff *)
  let updates = 12 in
  let chain_visits =
    let module E = Mvcc.Sias_engine in
    let db = Db.create () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let txn = E.begin_txn eng in
    E.insert eng txn table (row 1 0) |> Result.get_ok;
    E.commit eng txn |> Result.get_ok;
    let old_reader = E.begin_txn eng in
    for i = 1 to updates do
      let txn = E.begin_txn eng in
      E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok;
      E.commit eng txn |> Result.get_ok
    done;
    let _, v0 = E.chain_walk_stats eng in
    ignore (E.read eng old_reader table ~pk:1);
    let _, v1 = E.chain_walk_stats eng in
    E.commit eng old_reader |> Result.get_ok;
    v1 - v0
  in
  check
    (Printf.sprintf "chain walks %d versions for a deep old read" chain_visits)
    true
    (chain_visits >= updates);
  let module E = Mvcc.Sias_vector in
  let db = Db.create () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let txn = E.begin_txn eng in
  E.insert eng txn table (row 1 0) |> Result.get_ok;
  E.commit eng txn |> Result.get_ok;
  let old_reader = E.begin_txn eng in
  for i = 1 to updates do
    let txn = E.begin_txn eng in
    E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok;
    E.commit eng txn |> Result.get_ok
  done;
  ignore (E.read eng old_reader table ~pk:1);
  E.commit eng old_reader |> Result.get_ok;
  check "vector fetches per read bounded by spill chain" true
    (E.fetches_per_read eng < float_of_int updates)

(* ---------- TPC-C driver determinism ---------- *)

let test_driver_deterministic () =
  let run () =
    let module WE = W.Make (Mvcc.Sias_engine) in
    let db = Db.create ~buffer_pages:1024 () in
    let eng = Mvcc.Sias_engine.create db in
    let tables = WE.create_tables eng in
    let cfg =
      {
        (W.default_config ~warehouses:2) with
        W.scale = Tpcc.Tpcc_schema.scaled ~div:300 ();
        duration_s = 10.0;
      }
    in
    WE.load eng tables cfg;
    let r = WE.run eng tables cfg in
    ( r.W.total_committed,
      r.W.total_aborted,
      Flashsim.Blocktrace.write_bytes (Flashsim.Device.trace db.Db.device) )
  in
  let a = run () and b = run () in
  check "identical runs from identical seeds" true (a = b)

(* ---------- experiment harness across devices ---------- *)

let test_harness_devices () =
  let open Harness.Experiments in
  List.iter
    (fun device ->
      let o =
        run_tpcc
          {
            (default_setup ~engine:"sias" ~warehouses:2) with
            device;
            duration_s = 5.0;
            scale_div = 300;
            buffer_pages = 256;
          }
      in
      check "committed work" true (o.result.W.total_committed > 0);
      check "loaded something" true (o.load_write_mb > 0.0))
    [ Ssd_single; Hdd_single; Ssd_raid 2; Ssd_raid 6 ]

let test_harness_flush_policies_differ () =
  let open Harness.Experiments in
  let run flush =
    run_tpcc
      {
        (default_setup ~engine:"sias" ~warehouses:5) with
        flush;
        duration_s = 30.0;
        scale_div = 300;
        buffer_pages = 2048;
      }
  in
  let t1 = run T1 and t2 = run T2 in
  check
    (Printf.sprintf "t1 writes more than t2 (%.2f vs %.2f MB)" t1.run_write_mb t2.run_write_mb)
    true
    (t1.run_write_mb > t2.run_write_mb);
  check "t1 fill is sparser" true (t1.avg_fill <= t2.avg_fill +. 1e-9)

(* ---------- SSD wear accounting ---------- *)

let test_ssd_wear_grows () =
  let ssd = Flashsim.Ssd.create (Flashsim.Ssd.x25e_config ~blocks:32 ()) in
  let logical_bytes = Flashsim.Ssd.capacity_bytes ssd in
  let total_pages = logical_bytes / 4096 in
  (* fill the device once, then hammer a hot region: with no free space
     left, GC must relocate live pages — write amplification appears *)
  for p = 0 to total_pages - 1 do
    ignore (Flashsim.Ssd.service_time ssd Flashsim.Blocktrace.Write ~sector:(p * 8) ~bytes:4096)
  done;
  for _ = 1 to 40 do
    for p = 0 to (total_pages / 8) - 1 do
      ignore
        (Flashsim.Ssd.service_time ssd Flashsim.Blocktrace.Write ~sector:(p * 8) ~bytes:4096)
    done
  done;
  let ftl = Flashsim.Ssd.ftl ssd in
  check "erases accumulated" true (Flashsim.Ftl.erases ftl > 0);
  check "wear counter advanced" true
    (Flashsim.Nand.max_erase_count (Flashsim.Ftl.nand ftl) > 0);
  check "write amplification beyond 1" true (Flashsim.Ftl.write_amplification ftl > 1.0)

let test_trim_reaches_ftl () =
  (* GC page discard must invalidate the flash pages underneath so the
     device GC never relocates dead data *)
  let module E = Mvcc.Sias_engine in
  let device = Flashsim.Device.ssd_x25e ~blocks:1024 () in
  let db = Db.create ~device ~buffer_pages:256 () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let commit f =
    let txn = E.begin_txn eng in
    f txn;
    E.commit eng txn |> Result.get_ok
  in
  commit (fun txn ->
      for k = 1 to 300 do
        E.insert eng txn table (row k 0) |> Result.get_ok
      done);
  for i = 1 to 4 do
    commit (fun txn ->
        for k = 1 to 300 do
          E.update eng txn table ~pk:k (set_v i) |> Result.get_ok
        done)
  done;
  Bufpool.flush_all db.Db.pool ~sync:false;
  Bufpool.flush_os_cache db.Db.pool;
  E.gc eng;
  check "pages were trimmed" true (Bufpool.trims db.Db.pool > 0);
  (* writing a fresh stream must not force the FTL to relocate the
     trimmed (dead) data: WA stays low *)
  let info = Flashsim.Device.info device in
  let wa = List.assoc "write_amplification" info in
  check (Printf.sprintf "write amplification %.2f stays low" wa) true (wa < 1.5)

let suite =
  [
    Alcotest.test_case "trim reaches the FTL" `Quick test_trim_reaches_ftl;
    Alcotest.test_case "SIAS-Chains: gc + crash recovery" `Quick Gc_rec_chains.test;
    Alcotest.test_case "SIAS-V: gc + crash recovery" `Quick Gc_rec_vectors.test;
    Alcotest.test_case "recovery after checkpoint truncation" `Quick
      test_recovery_after_checkpoint_truncation;
    Alcotest.test_case "SIAS-V vector spill + overflow chain" `Quick test_vector_spill_overflow;
    Alcotest.test_case "vector read cost vs chain walk" `Quick test_vector_read_cost_beats_chain;
    Alcotest.test_case "driver determinism" `Quick test_driver_deterministic;
    Alcotest.test_case "harness runs on every device kind" `Slow test_harness_devices;
    Alcotest.test_case "t1 writes more than t2" `Slow test_harness_flush_policies_differ;
    Alcotest.test_case "ssd wear accounting" `Quick test_ssd_wear_grows;
  ]
